//! **T1 — the virtual-circuit explosion** (paper §2.1).
//!
//! "A network with N points of service would create N(N−1)/2 virtual
//! circuits … In a network with 10 service points, this is manageable for
//! 45 virtual circuits. In a network with 200 service points (a
//! medium-sized VPN), about 20,000 virtual circuits would be required."
//!
//! Both models are *built*, not just counted: the overlay provisions every
//! PVC hop by hop through a switch fabric; the MPLS/BGP side runs LDP plus
//! the VPN route fabric. Columns report circuits, state and control cost.

use mplsvpn_core::membership::site_prefix;
use mplsvpn_core::overlay::OverlayNetwork;
use netsim_mpls::ldp::{Fec, LdpConfig, LdpDomain};
use netsim_routing::{BgpVpnFabric, DistributionMode, Igp, RouteDistinguisher, RouteTarget};

use crate::table::Table;
use crate::{parallel_sweep, topo};

/// Number of switches / PEs in the provider infrastructure.
const DEVICES: usize = 8;

/// Result of building one VPN of `n` sites in both models.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Sites in the VPN.
    pub n: usize,
    /// Overlay: bidirectional circuit pairs (the paper's headline number).
    pub overlay_circuits: u64,
    /// Overlay: total switch cross-connect entries.
    pub overlay_state: usize,
    /// Overlay: device-touch provisioning operations.
    pub overlay_ops: u64,
    /// MPLS: BGP update messages to distribute all site routes.
    pub mpls_updates: u64,
    /// MPLS: worst per-PE VRF route count.
    pub mpls_max_pe_routes: usize,
    /// MPLS: tunnel LSP labels across the whole backbone (independent of
    /// the number of sites — it scales with PEs).
    pub mpls_tunnel_labels: u64,
    /// MPLS: LDP + BGP sessions.
    pub mpls_sessions: u64,
}

/// Builds both models for an `n`-site VPN.
pub fn measure(n: usize) -> ScalePoint {
    // --- Overlay: ring of switches, sites round-robin, full mesh.
    let (ring, _) = topo::national(DEVICES, 0, 622);
    let mut ov = OverlayNetwork::build(ring, 1_000_000);
    let sites: Vec<_> = (0..n).map(|i| ov.add_site(i % DEVICES, site_prefix(i))).collect();
    ov.full_mesh(&sites);

    // --- MPLS/BGP: PEs on a ring, LDP tunnels + VPN route fabric.
    let (mtopo, pes) = topo::national(DEVICES, DEVICES, 622);
    let igp = Igp::converge(&mtopo);
    let adjacency = mtopo.adjacency_lists();
    let fecs: Vec<(Fec, usize)> =
        pes.iter().enumerate().map(|(k, &pe)| (Fec(k as u32), pe)).collect();
    let nh = |u: usize, v: usize| igp.next_hop(u, v);
    let ldp = LdpDomain::run(&adjacency, &fecs, &nh, LdpConfig::default());

    let mut fabric = BgpVpnFabric::new(DEVICES, DistributionMode::RouteReflector);
    let rt = RouteTarget(1);
    let mut handles = Vec::new();
    for pe in 0..DEVICES {
        handles.push(fabric.add_vrf(pe, RouteDistinguisher::new(65000, 1), vec![rt], vec![rt]));
    }
    for i in 0..n {
        fabric.advertise(handles[i % DEVICES], site_prefix(i));
    }
    let mpls_max_pe_routes = (0..DEVICES).map(|pe| fabric.pe_state(pe).1).max().unwrap_or(0);

    ScalePoint {
        n,
        overlay_circuits: ov.circuit_pairs(),
        overlay_state: ov.total_switch_state(),
        overlay_ops: ov.provisioning_ops,
        mpls_updates: fabric.messages(),
        mpls_max_pe_routes,
        mpls_tunnel_labels: ldp.total_labels(),
        mpls_sessions: ldp.sessions + fabric.session_count(),
    }
}

/// Runs the sweep and renders the table.
pub fn run(quick: bool) -> String {
    let sizes: Vec<usize> = if quick { vec![10, 50, 100] } else { vec![10, 50, 100, 200, 500] };
    let jobs: Vec<Box<dyn FnOnce() -> ScalePoint + Send>> = sizes
        .iter()
        .map(|&n| Box::new(move || measure(n)) as Box<dyn FnOnce() -> ScalePoint + Send>)
        .collect();
    let points = parallel_sweep(jobs);

    let mut t = Table::new(
        "T1: overlay VC explosion vs MPLS VPN state (paper §2.1: 10 sites→45 VCs, 200→~20,000)",
        &[
            "sites",
            "ovl circuits",
            "ovl state",
            "ovl prov ops",
            "mpls updates",
            "mpls max PE routes",
            "mpls tun labels",
            "ovl sessions",
            "mpls sessions",
        ],
    );
    for p in &points {
        t.row(&[
            p.n.to_string(),
            p.overlay_circuits.to_string(),
            p.overlay_state.to_string(),
            p.overlay_ops.to_string(),
            p.mpls_updates.to_string(),
            p.mpls_max_pe_routes.to_string(),
            p.mpls_tunnel_labels.to_string(),
            (p.n * (p.n - 1) / 2).to_string(),
            p.mpls_sessions.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_numbers() {
        let p10 = measure(10);
        assert_eq!(p10.overlay_circuits, 45, "paper: 10 sites → 45 VCs");
        let p200 = measure(200);
        assert_eq!(p200.overlay_circuits, 19_900, "paper: 200 sites → ~20,000 VCs");
    }

    #[test]
    fn overlay_grows_quadratically_mpls_linearly() {
        let p50 = measure(50);
        let p100 = measure(100);
        // Circuits ×~4 when sites ×2.
        let circuit_ratio = p100.overlay_circuits as f64 / p50.overlay_circuits as f64;
        assert!(circuit_ratio > 3.5, "ratio {circuit_ratio}");
        // MPLS per-PE routes ×~2 when sites ×2.
        let route_ratio = p100.mpls_max_pe_routes as f64 / p50.mpls_max_pe_routes as f64;
        assert!(route_ratio < 2.5, "ratio {route_ratio}");
        // Tunnel labels don't depend on the number of sites at all.
        assert_eq!(p50.mpls_tunnel_labels, p100.mpls_tunnel_labels);
    }

    #[test]
    fn run_renders_rows() {
        let s = run(true);
        assert!(s.contains("45"), "{s}");
        assert!(s.lines().count() >= 6);
    }
}
