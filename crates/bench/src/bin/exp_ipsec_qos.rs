//! Q2: IPsec erases QoS visibility; MPLS EXP preserves it (paper §2.3/§3).
fn main() {
    print!("{}", mplsvpn_bench::experiments::ipsec_qos::run(false));
}
