//! F2: LSP tunnel mesh per VPN (paper Figure 2).
fn main() {
    print!("{}", mplsvpn_bench::experiments::tunnels::run(false));
}
