//! R1: link failure, detection delay, and reconvergence (paper §3/§5).
fn main() {
    print!("{}", mplsvpn_bench::experiments::resilience::run(false));
}
