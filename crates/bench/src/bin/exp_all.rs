//! Runs every experiment (quick parameters) and prints all tables — the
//! source of EXPERIMENTS.md's measured columns. Pass --full for the full
//! parameter set.
use mplsvpn_bench::experiments as e;

type Section = (&'static str, fn(bool) -> String);

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    let sections: Vec<Section> = vec![
        ("T1", e::scalability::run),
        ("F1", e::isolation::run),
        ("F2", e::tunnels::run),
        ("F3", e::trace::run),
        ("F4", e::forwarding::run),
        ("Q1", e::qos::run),
        ("Q2", e::ipsec_qos::run),
        ("Q3", e::te::run),
        ("Q4", e::interprovider::run),
        ("M1", e::membership::run),
        ("R1", e::resilience::run),
        ("R2", e::failover::run),
        ("A1", e::aqm::run),
        ("S1", e::intserv::run),
    ];
    for (name, f) in sections {
        println!("######## {name} ########");
        println!("{}", f(quick));
    }
}
