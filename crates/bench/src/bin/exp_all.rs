//! Runs every experiment (quick parameters) and prints all tables — the
//! source of EXPERIMENTS.md's measured columns. Pass --full for the full
//! parameter set; pass `--artifacts DIR` to also write each section's
//! table to `DIR/<name>.txt` and, for instrumented experiments, the run's
//! [`mplsvpn_core::MetricsSnapshot`] to `DIR/<name>_metrics.json` (what
//! CI uploads).
use mplsvpn_bench::{experiments as e, ExpReport};

type Section = (&'static str, fn(bool) -> ExpReport);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = !args.iter().any(|a| a == "--full");
    let artifacts: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--artifacts")
        .map(|i| args.get(i + 1).expect("--artifacts needs a directory").into());
    if let Some(dir) = &artifacts {
        std::fs::create_dir_all(dir).expect("create artifacts dir");
    }
    let sections: Vec<Section> = vec![
        ("T1", |q| e::scalability::run(q).into()),
        ("F1", |q| e::isolation::run(q).into()),
        ("F2", |q| e::tunnels::run(q).into()),
        ("F3", |q| e::trace::run(q).into()),
        ("F4", |q| e::forwarding::run(q).into()),
        ("Q1", e::qos::report),
        ("Q2", |q| e::ipsec_qos::run(q).into()),
        ("Q3", |q| e::te::run(q).into()),
        ("Q4", |q| e::interprovider::run(q).into()),
        ("M1", |q| e::membership::run(q).into()),
        ("R1", |q| e::resilience::run(q).into()),
        ("R2", e::failover::report),
        ("A1", |q| e::aqm::run(q).into()),
        ("S1", |q| e::intserv::run(q).into()),
    ];
    for (name, f) in sections {
        println!("######## {name} ########");
        let report = f(quick);
        println!("{report}");
        if let Some(dir) = &artifacts {
            std::fs::write(dir.join(format!("{name}.txt")), &report.table)
                .expect("write table artifact");
            if let Some(snap) = &report.snapshot {
                std::fs::write(dir.join(format!("{name}_metrics.json")), snap.to_json())
                    .expect("write metrics artifact");
            }
        }
    }
}
