//! T1: overlay virtual-circuit explosion vs MPLS VPN state (paper §2.1).
fn main() {
    print!("{}", mplsvpn_bench::experiments::scalability::run(false));
}
