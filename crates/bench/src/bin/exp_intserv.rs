//! S1: per-flow RSVP/IntServ state vs per-class DiffServ (paper §2.2).
fn main() {
    print!("{}", mplsvpn_bench::experiments::intserv::run(false));
}
