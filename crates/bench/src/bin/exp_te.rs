//! Q3: CSPF traffic engineering vs IGP-only routing (paper §5).
fn main() {
    print!("{}", mplsvpn_bench::experiments::te::run(false));
}
