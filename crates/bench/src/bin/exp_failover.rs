//! R2: fast-reroute link protection vs global reconvergence (paper §3/§5).
fn main() {
    print!("{}", mplsvpn_bench::experiments::failover::run(false));
}
