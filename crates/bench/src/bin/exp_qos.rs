//! Q1: DiffServ-over-MPLS vs FIFO on a congested backbone (paper §3.1/§5).
fn main() {
    print!("{}", mplsvpn_bench::experiments::qos::run(false));
}
