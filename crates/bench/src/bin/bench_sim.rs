//! `bench_sim` — the tracked packets/sec + events/sec throughput harness.
//!
//! Runs the end-to-end VPN data path (host→CE→PE→P→P→PE→CE→sink) under
//! three scenarios and reports simulator throughput as machine-readable
//! JSON (`BENCH_sim.json`), so every PR has a perf trajectory to defend:
//!
//! * `vpn_path_fifo` — best-effort core, one near-saturating CBR flow.
//! * `vpn_path_diffserv` — DiffServ (priority + RED) core, same flow.
//! * `diffserv_congested_mix` — 2× overloaded bottleneck, EF + AF31 + BE
//!   mix (exercises drops, RED and the priority scheduler per event).
//! * `control_inband_joins` — in-band control plane under membership
//!   churn on a full-mesh backbone: the packets here are MP-BGP/LDP/IGP
//!   messages, so `pps` tracks the cost of the control-message path.
//!
//! Only the event loop is timed; topology construction and control-plane
//! convergence are excluded. All workloads are CBR and seeded, so the
//! event count per scenario is identical across runs and machines — wall
//! time is the only machine-dependent quantity.
//!
//! ```text
//! bench_sim [--quick] [--packets N] [--repeat N] [--out PATH] [--check PATH] [--tolerance F]
//! ```
//!
//! Each scenario is run `--repeat` times (default 3) and the fastest run
//! is reported: the simulator is deterministic, so variance between runs
//! is pure scheduler/cache noise and the minimum wall time is the best
//! estimate of the true cost.
//!
//! `--check` compares the fresh packets/sec against the `"pps"` values in
//! a previously written JSON file and exits non-zero when any scenario
//! regresses by more than `--tolerance` (default 0.20 = 20%). CI passes a
//! wider tolerance to absorb cross-machine variance; use the default when
//! comparing runs on one machine.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use mplsvpn_core::network::DsSched;
use mplsvpn_core::{BackboneBuilder, CoreQos};
use netsim_net::addr::pfx;
use netsim_net::Dscp;
use netsim_sim::{Sink, SourceConfig};

/// One measured scenario.
struct Scenario {
    name: &'static str,
    /// Packets offered by the traffic sources.
    offered: u64,
    /// Packets absorbed by the measuring sink (≤ offered under congestion).
    delivered: u64,
    /// Calendar events processed during the timed window.
    events: u64,
    /// Wall-clock nanoseconds spent in the event loop.
    wall_ns: u128,
}

impl Scenario {
    fn pps(&self) -> f64 {
        rate(self.offered, self.wall_ns)
    }

    fn eps(&self) -> f64 {
        rate(self.events, self.wall_ns)
    }
}

#[allow(clippy::cast_precision_loss)]
fn rate(count: u64, wall_ns: u128) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        count as f64 * 1e9 / wall_ns as f64
    }
}

/// Uncongested VPN path: one 20 kpps CBR flow over the dumbbell.
fn vpn_path(name: &'static str, qos: CoreQos, packets: u64) -> Scenario {
    let (t, pes) = mplsvpn_bench::topo::dumbbell(100);
    let mut pn = BackboneBuilder::new(t, pes).core_qos(qos).build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 500);
    pn.attach_cbr_source(a, cfg, 50_000, Some(packets)); // 20 kpps
    let start = Instant::now();
    pn.run_to_quiescence();
    let wall_ns = start.elapsed().as_nanos();
    let delivered = pn.net.node_ref::<Sink>(sink).total_packets;
    assert!(delivered > 0, "{name}: nothing delivered");
    Scenario { name, offered: packets, delivered, events: pn.net.events_processed(), wall_ns }
}

/// 2× overloaded DiffServ bottleneck: EF voice + AF31 + best-effort bulk.
fn congested_mix(packets: u64) -> Scenario {
    let (t, pes) = mplsvpn_bench::topo::dumbbell(10);
    let mut pn = BackboneBuilder::new(t, pes)
        .core_qos(CoreQos::DiffServ { cap_bytes: 1 << 20, sched: DsSched::Priority })
        .build();
    let vpn = pn.new_vpn("acme");
    let a = pn.add_site(vpn, 0, pfx("10.1.0.0/16"), None);
    let b = pn.add_site(vpn, 1, pfx("10.2.0.0/16"), None);
    let sink = pn.attach_sink(b, pfx("10.2.0.0/16"));
    let per_flow = packets / 3;
    // Offered load ≈ 20 Mb/s against the 10 Mb/s bottleneck.
    let flows = [
        (1u64, Dscp::EF, 160, 100_000u64), // ~12.8 kpps voice
        (2, Dscp::AF31, 500, 100_000),     // ~10 kpps assured
        (3, Dscp::BE, 1000, 100_000),      // ~10 kpps bulk
    ];
    for &(flow, dscp, payload, interval) in &flows {
        let cfg = SourceConfig::udp(
            flow,
            pn.site_addr(a, flow as u32),
            pn.site_addr(b, 1),
            5000,
            payload,
        )
        .with_dscp(dscp);
        pn.attach_cbr_source(a, cfg, interval, Some(per_flow));
    }
    let start = Instant::now();
    pn.run_to_quiescence();
    let wall_ns = start.elapsed().as_nanos();
    let delivered = pn.net.node_ref::<Sink>(sink).total_packets;
    assert!(delivered > 0, "congested mix: nothing delivered");
    Scenario {
        name: "diffserv_congested_mix",
        offered: per_flow * 3,
        delivered,
        events: pn.net.events_processed(),
        wall_ns,
    }
}

/// In-band control-plane churn: round-robin site joins on a full-mesh
/// backbone. Every "packet" in this scenario is a control message —
/// MP-BGP updates fanning out per join, plus the LDP/IGP bring-up — so
/// the reported rate prices the control-message path itself.
fn control_inband_joins(_packets: u64) -> Scenario {
    let n = 6;
    let topo = netsim_routing::Topology::full_mesh(
        n,
        netsim_routing::LinkAttrs { cost: 1, capacity_bps: 1_000_000_000 },
    );
    let mut pn = BackboneBuilder::new(topo, (0..n).collect())
        .control_mode(mplsvpn_core::ControlMode::InBand)
        .build();
    let vpn = pn.new_vpn("churn");
    // Pinned independent of `packets`: the per-run bring-up cost would
    // otherwise make quick-mode pps incomparable to the tracked full-run
    // baseline (the --check floor is a ratio of the two).
    let joins: u64 = 40;
    let start = Instant::now();
    for i in 0..joins {
        let pe = (i as usize) % n;
        pn.add_site(vpn, pe, mplsvpn_core::membership::site_prefix(i as usize), None);
        pn.run_for(5_000_000); // 5 ms: one-hop propagation on the mesh
    }
    pn.run_to_quiescence();
    let wall_ns = start.elapsed().as_nanos();
    let stats = pn.control_stats().expect("in-band network exposes control stats");
    assert!(stats.pkts_terminated > 0, "control joins: no messages processed");
    assert_eq!(stats.pkts_sent, stats.pkts_terminated, "all control messages must land");
    Scenario {
        name: "control_inband_joins",
        offered: stats.pkts_sent,
        delivered: stats.pkts_terminated,
        events: pn.net.events_processed(),
        wall_ns,
    }
}

fn render_json(scenarios: &[Scenario], packets: u64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"bench_sim/v1\",");
    let _ = writeln!(out, "  \"packets_per_scenario\": {packets},");
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let comma = if i + 1 == scenarios.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"offered\": {}, \"delivered\": {}, \"events\": {}, \
             \"wall_ms\": {:.3}, \"pps\": {:.0}, \"eps\": {:.0}}}{comma}",
            s.name,
            s.offered,
            s.delivered,
            s.events,
            s.wall_ns as f64 / 1e6,
            s.pps(),
            s.eps(),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"name": ..., "pps": ...` pairs out of a previously written
/// `BENCH_sim.json` (line-oriented; this harness wrote the file, so the
/// layout is known — one scenario object per line).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "\"name\": \"") else { continue };
        let Some(pps) = field_num(line, "\"pps\": ") else { continue };
        out.push((name, pps));
    }
    out
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest.find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())?;
    rest[..end].parse().ok()
}

/// Runs `f` `repeat` times and keeps the fastest run (smallest wall time).
fn best_of(repeat: u32, f: impl Fn() -> Scenario) -> Scenario {
    let mut best = f();
    for _ in 1..repeat {
        let s = f();
        if s.wall_ns < best.wall_ns {
            best = s;
        }
    }
    best
}

fn main() -> ExitCode {
    let mut packets: u64 = 100_000;
    let mut repeat: u32 = 3;
    let mut out_path = String::from("BENCH_sim.json");
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => packets = 20_000,
            "--packets" => packets = args.next().and_then(|v| v.parse().ok()).expect("--packets N"),
            "--repeat" => repeat = args.next().and_then(|v| v.parse().ok()).expect("--repeat N"),
            "--out" => out_path = args.next().expect("--out PATH"),
            "--check" => check_path = Some(args.next().expect("--check PATH")),
            "--tolerance" => {
                tolerance = args.next().and_then(|v| v.parse().ok()).expect("--tolerance F");
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    assert!(repeat >= 1, "--repeat must be at least 1");

    let baseline = check_path.as_ref().map(|p| {
        let text =
            std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read baseline {p}: {e}"));
        parse_baseline(&text)
    });

    let scenarios = [
        best_of(repeat, || {
            vpn_path("vpn_path_fifo", CoreQos::BestEffort { cap_bytes: 1 << 20 }, packets)
        }),
        best_of(repeat, || {
            vpn_path(
                "vpn_path_diffserv",
                CoreQos::DiffServ { cap_bytes: 1 << 20, sched: DsSched::Priority },
                packets,
            )
        }),
        best_of(repeat, || congested_mix(packets)),
        best_of(repeat, || control_inband_joins(packets)),
    ];
    for s in &scenarios {
        println!(
            "{:26} offered {:>8}  delivered {:>8}  events {:>9}  wall {:>9.3} ms  {:>12.0} pps  {:>12.0} eps",
            s.name,
            s.offered,
            s.delivered,
            s.events,
            s.wall_ns as f64 / 1e6,
            s.pps(),
            s.eps(),
        );
    }

    let json = render_json(&scenarios, packets);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    let mut failed = false;
    if let Some(base) = baseline {
        for s in &scenarios {
            let Some((_, base_pps)) = base.iter().find(|(n, _)| n == s.name) else {
                println!("CHECK {:26} no baseline entry — skipped", s.name);
                continue;
            };
            let floor = base_pps * (1.0 - tolerance);
            let fresh = s.pps();
            if fresh < floor {
                println!(
                    "CHECK {:26} FAIL: {fresh:.0} pps < floor {floor:.0} (baseline {base_pps:.0}, tolerance {tolerance})",
                    s.name
                );
                failed = true;
            } else {
                println!(
                    "CHECK {:26} ok: {fresh:.0} pps >= floor {floor:.0} (baseline {base_pps:.0})",
                    s.name
                );
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
