//! F4: label swap vs longest-prefix match (paper Figure 4 / §3).
fn main() {
    print!("{}", mplsvpn_bench::experiments::forwarding::run(false));
}
