//! M1: join/leave cost — MPLS/BGP vs overlay (paper §4.1–4.2).
fn main() {
    print!("{}", mplsvpn_bench::experiments::membership::run(false));
}
