//! A1: RED vs tail-drop under responsive TCP-like traffic.
fn main() {
    print!("{}", mplsvpn_bench::experiments::aqm::run(false));
}
