//! F1: multi-VPN isolation over one backbone (paper Figure 1).
fn main() {
    print!("{}", mplsvpn_bench::experiments::isolation::run(false));
}
