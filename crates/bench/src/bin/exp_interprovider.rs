//! Q4: end-to-end SLA across two cooperating MPLS carriers (paper §5).
fn main() {
    print!("{}", mplsvpn_bench::experiments::interprovider::run(false));
}
