//! F3: hop-by-hop trace CE→PE→P→PE→CE (paper Figure 3).
fn main() {
    print!("{}", mplsvpn_bench::experiments::trace::run(false));
}
