//! Experiment output bundling: a rendered table plus the optional
//! [`MetricsSnapshot`] captured from the run that produced it, so CI can
//! publish machine-readable numbers next to every human-readable table.

use std::fmt;

use mplsvpn_core::MetricsSnapshot;

/// What one experiment produces: the table text every binary prints, and
/// (for instrumented experiments) the full metrics snapshot of a
/// representative run for artifact export.
#[derive(Default)]
pub struct ExpReport {
    /// Rendered fixed-width table(s).
    pub table: String,
    /// Snapshot of the instrumented run, if the experiment captures one.
    pub snapshot: Option<MetricsSnapshot>,
}

impl From<String> for ExpReport {
    fn from(table: String) -> Self {
        ExpReport { table, snapshot: None }
    }
}

impl fmt::Display for ExpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_tables_wrap_without_a_snapshot() {
        let r: ExpReport = "| a |\n".to_owned().into();
        assert!(r.snapshot.is_none());
        assert_eq!(format!("{r}"), "| a |\n");
    }
}
