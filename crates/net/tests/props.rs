//! Property-based tests for the packet substrate: wire round-trips, prefix
//! algebra, and LPM trie correctness against a naive model.

use bytes::Bytes;
use netsim_net::ip::proto;
use netsim_net::packet::EspHeader;
use netsim_net::transport::{TcpHeader, UdpHeader};
use netsim_net::wire::{decode, encode};
use netsim_net::{Dscp, Ip, Ipv4Header, Layer, LpmTrie, MplsLabel, Packet, Prefix, VcHeader};
use proptest::prelude::*;

fn arb_ip() -> impl Strategy<Value = Ip> {
    any::<u32>().prop_map(Ip)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(Ip(a), l))
}

fn arb_dscp() -> impl Strategy<Value = Dscp> {
    (0u8..64).prop_map(Dscp::new)
}

fn arb_payload() -> impl Strategy<Value = Bytes> {
    proptest::collection::vec(any::<u8>(), 0..256).prop_map(Bytes::from)
}

/// Generates structurally valid packets: optional MPLS stack and/or outer VC,
/// an IPv4 chain (possibly IP-in-IP), and a transport or ESP tail.
fn arb_packet() -> impl Strategy<Value = Packet> {
    let transport = prop_oneof![
        (any::<u16>(), any::<u16>())
            .prop_map(|(s, d)| (proto::UDP, Some(Layer::Udp(UdpHeader::new(s, d))))),
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u32>(), any::<u8>()).prop_map(
            |(s, d, seq, ack, flags)| {
                (
                    proto::TCP,
                    Some(Layer::Tcp(TcpHeader { src_port: s, dst_port: d, seq, ack, flags })),
                )
            }
        ),
        (any::<u32>(), any::<u32>())
            .prop_map(|(spi, seq)| (proto::ESP, Some(Layer::Esp(EspHeader { spi, seq })))),
        Just((proto::CONTROL, None)),
    ];
    (
        arb_ip(),
        arb_ip(),
        arb_dscp(),
        1u8..=255,
        transport,
        arb_payload(),
        proptest::collection::vec((0u32..(1 << 20), 0u8..8, 1u8..=255), 0..4),
        proptest::option::of((0u32..(1 << 22), any::<bool>())),
        proptest::option::of((arb_ip(), arb_ip(), arb_dscp())),
    )
        .prop_map(|(src, dst, dscp, ttl, (pr, tl), payload, labels, vc, outer_ip)| {
            let mut ip_hdr = Ipv4Header::new(src, dst, pr, dscp);
            ip_hdr.ttl = ttl;
            let mut layers = vec![Layer::Ipv4(ip_hdr)];
            if let Some(l) = tl {
                layers.push(l);
            }
            if let Some((osrc, odst, odscp)) = outer_ip {
                layers.insert(0, Layer::Ipv4(Ipv4Header::new(osrc, odst, proto::IPIP, odscp)));
            }
            let mut pkt = Packet::new(layers, payload);
            if let Some((vcid, de)) = vc {
                pkt.push_outer(Layer::Vc(VcHeader::new(vcid, de)));
            } else {
                for (label, exp, lttl) in labels {
                    pkt.push_outer(Layer::Mpls(MplsLabel::new(label, exp, lttl)));
                }
            }
            pkt
        })
}

proptest! {
    #[test]
    fn wire_roundtrip(pkt in arb_packet()) {
        let bytes = encode(&pkt).expect("valid generated packet must encode");
        prop_assert_eq!(bytes.len(), 2 + pkt.wire_len());
        let back = decode(&bytes).expect("encoded packet must decode");
        prop_assert_eq!(back.layers(), pkt.layers());
        prop_assert_eq!(back.payload, pkt.payload);
    }

    #[test]
    fn decode_never_panics_on_garbage(buf in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode(&buf);
    }

    #[test]
    fn decode_never_panics_on_corrupted_valid(pkt in arb_packet(), flip in 0usize..64, bit in 0u8..8) {
        let mut bytes = encode(&pkt).unwrap();
        let idx = flip % bytes.len().max(1);
        if idx < bytes.len() {
            bytes[idx] ^= 1 << bit;
        }
        let _ = decode(&bytes);
    }

    #[test]
    fn prefix_contains_matches_mask_math(p in arb_prefix(), a in arb_ip()) {
        let expected = p.len() == 0 || (a.0 ^ p.addr().0) >> (32 - u32::from(p.len())) == 0;
        prop_assert_eq!(p.contains(a), expected);
    }

    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        prop_assert_eq!(s.parse::<Prefix>().unwrap(), p);
    }

    #[test]
    fn prefix_overlap_is_symmetric_and_containment_implies_overlap(a in arb_prefix(), b in arb_prefix()) {
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
        if a.contains(b.addr()) || b.contains(a.addr()) {
            prop_assert!(a.overlaps(b));
        }
    }

    /// The trie must agree with a naive "scan all prefixes, keep the longest
    /// match" model, for both present and absent addresses.
    #[test]
    fn lpm_matches_naive_model(
        entries in proptest::collection::vec((arb_prefix(), any::<u16>()), 0..64),
        queries in proptest::collection::vec(arb_ip(), 0..32),
    ) {
        let mut trie = LpmTrie::new();
        // Later inserts win for duplicate prefixes, like the model below.
        let mut model: Vec<(Prefix, u16)> = Vec::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            model.retain(|(q, _)| q != p);
            model.push((*p, *v));
        }
        prop_assert_eq!(trie.len(), model.len());
        for q in queries {
            let want = model
                .iter()
                .filter(|(p, _)| p.contains(q))
                .max_by_key(|(p, _)| p.len())
                .map(|(_, v)| *v);
            prop_assert_eq!(trie.lookup(q).copied(), want);
        }
    }

    /// Insert-then-remove leaves lookups as if the entry never existed.
    #[test]
    fn lpm_remove_restores(
        base in proptest::collection::vec((arb_prefix(), any::<u16>()), 0..32),
        extra in arb_prefix(),
        queries in proptest::collection::vec(arb_ip(), 0..16),
    ) {
        let mut reference = LpmTrie::new();
        for (p, v) in &base {
            reference.insert(*p, *v);
        }
        let mut subject = LpmTrie::new();
        for (p, v) in &base {
            subject.insert(*p, *v);
        }
        let displaced = subject.insert(extra, 0xFFFF);
        let removed = subject.remove(extra);
        prop_assert_eq!(removed, Some(0xFFFF));
        if let Some(old) = displaced {
            subject.insert(extra, old);
        }
        for q in queries {
            prop_assert_eq!(subject.lookup(q), reference.lookup(q));
        }
    }

    #[test]
    fn lpm_iter_roundtrip(entries in proptest::collection::vec((arb_prefix(), any::<u16>()), 0..48)) {
        let mut trie = LpmTrie::new();
        let mut model: Vec<(Prefix, u16)> = Vec::new();
        for (p, v) in &entries {
            trie.insert(*p, *v);
            model.retain(|(q, _)| q != p);
            model.push((*p, *v));
        }
        let mut got: Vec<(Prefix, u16)> = trie.iter().map(|(p, v)| (p, *v)).collect();
        got.sort();
        model.sort();
        prop_assert_eq!(got, model);
    }

    #[test]
    fn mpls_entry_wire_roundtrip(label in 0u32..(1 << 20), exp in 0u8..8, ttl in any::<u8>(), bos in any::<bool>()) {
        let e = MplsLabel::new(label, exp, ttl);
        let (d, b) = MplsLabel::decode(e.encode(bos));
        prop_assert_eq!(d, e);
        prop_assert_eq!(b, bos);
    }

    #[test]
    fn checksum_self_verifies(data in proptest::collection::vec(any::<u8>(), 2..64)) {
        use netsim_net::ip::internet_checksum;
        let mut d = data;
        // Zero a 16-bit checksum slot, compute, insert, verify sums to zero.
        d[0] = 0;
        d[1] = 0;
        let ck = internet_checksum(&d);
        d[0] = (ck >> 8) as u8;
        d[1] = (ck & 0xFF) as u8;
        // RFC 1071: a message with a correct checksum folds to 0 or 0xFFFF is not possible here
        prop_assert_eq!(internet_checksum(&d), 0);
    }

    /// ISSUE 2 satellite: the packet's reported wire length must equal the
    /// sum of its layers' header sizes plus the payload — through every
    /// representation the inline small-vector stack can take. Pushing up to
    /// six extra labels forces the inline→heap spill; popping everything
    /// walks back through the boundary. This pins the O(1) cached header
    /// length to the ground truth at each step.
    #[test]
    fn wire_len_is_sum_of_layers_plus_payload(
        pkt in arb_packet(),
        extra in proptest::collection::vec((0u32..(1 << 20), 0u8..8, 1u8..=255), 0..6),
    ) {
        fn ground_truth(p: &Packet) -> usize {
            p.layers().iter().map(Layer::wire_len).sum::<usize>() + p.payload.len()
        }
        let mut pkt = pkt;
        prop_assert_eq!(pkt.wire_len(), ground_truth(&pkt));
        for (label, exp, ttl) in extra {
            pkt.push_outer(Layer::Mpls(MplsLabel::new(label, exp, ttl)));
            prop_assert_eq!(pkt.wire_len(), ground_truth(&pkt));
        }
        while pkt.pop_outer().is_some() {
            prop_assert_eq!(pkt.wire_len(), ground_truth(&pkt));
        }
        prop_assert_eq!(pkt.wire_len(), pkt.payload.len());
    }
}
