//! # netsim-net — packet formats and address machinery
//!
//! Foundation crate for the MPLS VPN emulator: IPv4 addressing and CIDR
//! prefixes, a longest-prefix-match trie, the packet model shared by every
//! other crate, and wire serialization for all supported headers.
//!
//! The emulator's routers operate on the *structured* representation
//! ([`Packet`], a stack of [`Layer`]s over an opaque payload) so that the hot
//! forwarding path never re-parses bytes. Wire encoding/decoding
//! ([`wire`]) exists so that (a) IPsec can encrypt a *real* serialization of
//! the inner packet — making the paper's "encryption erases QoS visibility"
//! claim physically true in the emulator — and (b) property tests can verify
//! that every structured packet round-trips through its wire form.
//!
//! Nothing in this crate knows about simulation time, queueing, or routing
//! protocols; those live in `netsim-sim`, `netsim-qos`, and `netsim-routing`.
//!
//! # Example
//!
//! ```
//! use netsim_net::{Dscp, LpmTrie, Packet, Prefix};
//!
//! // A forwarding table with two routes.
//! let mut fib: LpmTrie<&str> = LpmTrie::new();
//! fib.insert("10.0.0.0/8".parse().unwrap(), "core");
//! fib.insert("10.1.0.0/16".parse().unwrap(), "customer");
//!
//! // Longest prefix wins.
//! let dst = "10.1.2.3".parse().unwrap();
//! assert_eq!(fib.lookup(dst), Some(&"customer"));
//!
//! // Packets round-trip through the wire codec.
//! let pkt = Packet::udp("10.1.2.3".parse().unwrap(), dst, 1000, 53, Dscp::EF, 64);
//! let bytes = netsim_net::wire::encode(&pkt).unwrap();
//! let back = netsim_net::wire::decode(&bytes).unwrap();
//! assert_eq!(back.layers(), pkt.layers());
//! # let _: Prefix = "0.0.0.0/0".parse().unwrap();
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod dscp;
pub mod error;
pub mod fr;
pub mod ip;
pub mod lpm;
pub mod mpls;
pub mod packet;
pub mod transport;
pub mod wire;

pub use addr::{Ip, Prefix};
pub use dscp::Dscp;
pub use error::NetError;
pub use fr::VcHeader;
pub use ip::{proto, Ipv4Header};
pub use lpm::{LpmCache, LpmTrie};
pub use mpls::{MplsLabel, EXPLICIT_NULL, IMPLICIT_NULL, MAX_LABEL, MIN_UNRESERVED_LABEL};
pub use packet::{Layer, Packet, Pkt, PktMeta};
pub use transport::{FiveTuple, TcpHeader, UdpHeader};
