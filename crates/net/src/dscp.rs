//! DiffServ code points.
//!
//! The DSCP is the six most significant bits of the IPv4 ToS byte. The paper
//! (§5) has the CPE mark traffic with "DiffServ/ToS" and the provider edge
//! map that marking into the MPLS header's QoS (EXP) field; the code points
//! themselves therefore live here in the packet-format crate, while the
//! per-hop behaviours built on them live in `netsim-qos`.

use std::fmt;

/// A DiffServ code point (6 bits, values 0..=63).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dscp(u8);

impl Dscp {
    /// Best effort (default PHB), code point 0.
    pub const BE: Dscp = Dscp(0);
    /// Expedited Forwarding (RFC 3246), code point 46. Voice.
    pub const EF: Dscp = Dscp(46);
    /// Assured Forwarding class 1, low drop precedence (RFC 2597).
    pub const AF11: Dscp = Dscp(10);
    /// AF class 1, medium drop precedence.
    pub const AF12: Dscp = Dscp(12);
    /// AF class 1, high drop precedence.
    pub const AF13: Dscp = Dscp(14);
    /// AF class 2, low drop precedence.
    pub const AF21: Dscp = Dscp(18);
    /// AF class 2, medium drop precedence.
    pub const AF22: Dscp = Dscp(20);
    /// AF class 2, high drop precedence.
    pub const AF23: Dscp = Dscp(22);
    /// AF class 3, low drop precedence.
    pub const AF31: Dscp = Dscp(26);
    /// AF class 3, medium drop precedence.
    pub const AF32: Dscp = Dscp(28);
    /// AF class 3, high drop precedence.
    pub const AF33: Dscp = Dscp(30);
    /// AF class 4, low drop precedence.
    pub const AF41: Dscp = Dscp(34);
    /// AF class 4, medium drop precedence.
    pub const AF42: Dscp = Dscp(36);
    /// AF class 4, high drop precedence.
    pub const AF43: Dscp = Dscp(38);
    /// Class selector 6 (network control).
    pub const CS6: Dscp = Dscp(48);

    /// Creates a code point, masking to 6 bits.
    #[inline]
    pub const fn new(v: u8) -> Self {
        Dscp(v & 0x3F)
    }

    /// The raw 6-bit value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// The AF class number (1..=4) if this is an Assured Forwarding code
    /// point, else `None`.
    pub const fn af_class(self) -> Option<u8> {
        match self.0 {
            10 | 12 | 14 => Some(1),
            18 | 20 | 22 => Some(2),
            26 | 28 | 30 => Some(3),
            34 | 36 | 38 => Some(4),
            _ => None,
        }
    }

    /// The AF drop precedence (1=low..3=high) if this is an AF code point.
    pub const fn af_drop_precedence(self) -> Option<u8> {
        match self.0 {
            10 | 18 | 26 | 34 => Some(1),
            12 | 20 | 28 | 36 => Some(2),
            14 | 22 | 30 | 38 => Some(3),
            _ => None,
        }
    }

    /// Returns the AF code point for (class, drop precedence).
    ///
    /// # Panics
    /// Panics unless `class ∈ 1..=4` and `dp ∈ 1..=3`.
    pub const fn af(class: u8, dp: u8) -> Dscp {
        assert!(class >= 1 && class <= 4 && dp >= 1 && dp <= 3);
        Dscp(8 * class + 2 * dp)
    }
}

impl fmt::Display for Dscp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "BE"),
            46 => write!(f, "EF"),
            48 => write!(f, "CS6"),
            v => {
                if let (Some(c), Some(d)) = (self.af_class(), self.af_drop_precedence()) {
                    write!(f, "AF{c}{d}")
                } else {
                    write!(f, "DSCP{v}")
                }
            }
        }
    }
}

impl fmt::Debug for Dscp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_known_values() {
        assert_eq!(Dscp::EF.value(), 46);
        assert_eq!(Dscp::BE.value(), 0);
        assert_eq!(Dscp::AF11.value(), 10);
        assert_eq!(Dscp::AF43.value(), 38);
    }

    #[test]
    fn af_constructor_matches_constants() {
        assert_eq!(Dscp::af(1, 1), Dscp::AF11);
        assert_eq!(Dscp::af(2, 3), Dscp::AF23);
        assert_eq!(Dscp::af(4, 2), Dscp::AF42);
    }

    #[test]
    fn af_class_and_dp_roundtrip() {
        for class in 1..=4u8 {
            for dp in 1..=3u8 {
                let d = Dscp::af(class, dp);
                assert_eq!(d.af_class(), Some(class));
                assert_eq!(d.af_drop_precedence(), Some(dp));
            }
        }
        assert_eq!(Dscp::EF.af_class(), None);
        assert_eq!(Dscp::BE.af_class(), None);
    }

    #[test]
    fn new_masks_to_six_bits() {
        assert_eq!(Dscp::new(0xFF).value(), 0x3F);
    }

    #[test]
    fn display_names() {
        assert_eq!(Dscp::EF.to_string(), "EF");
        assert_eq!(Dscp::BE.to_string(), "BE");
        assert_eq!(Dscp::AF21.to_string(), "AF21");
        assert_eq!(Dscp::new(5).to_string(), "DSCP5");
    }
}
