//! Longest-prefix-match forwarding table.
//!
//! A binary trie over address bits, with all nodes stored in one `Vec` and
//! children addressed by dense `u32` indices — a lookup is a pure integer
//! walk with no pointer chasing through separate allocations and no per-call
//! allocation. This is the structure whose per-packet cost experiment **F4**
//! compares against the MPLS label swap (paper §3: "the less time devices
//! spend inspecting traffic, the more time they have to forward it").

use crate::addr::{Ip, Prefix};

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Node<V> {
    child: [u32; 2],
    value: Option<V>,
}

impl<V> Node<V> {
    fn empty() -> Self {
        Node { child: [NONE, NONE], value: None }
    }
}

/// One-entry memo for [`LpmTrie::lookup_cached`]: the destination of the
/// last lookup and the trie node it resolved to, stamped with the trie's
/// mutation version. `Default` starts empty; owners need no setup.
#[derive(Clone, Copy, Debug, Default)]
pub struct LpmCache {
    /// `(destination, matched node index)`; `u32::MAX` encodes a miss.
    entry: Option<(Ip, u32)>,
    /// Trie version the entry was taken at.
    version: u64,
}

/// A longest-prefix-match table mapping [`Prefix`]es to values of type `V`.
#[derive(Clone, Debug)]
pub struct LpmTrie<V> {
    nodes: Vec<Node<V>>,
    len: usize,
    /// Bumped on every mutation; lets [`LpmCache`] entries self-invalidate.
    version: u64,
}

impl<V> Default for LpmTrie<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LpmTrie<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        LpmTrie { nodes: vec![Node::empty()], len: 0, version: 0 }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` under `prefix`, returning the previous value if the
    /// prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        self.version += 1;
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.addr().bit(i) as usize;
            let next = self.nodes[node].child[bit];
            node = if next == NONE {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node::empty());
                self.nodes[node].child[bit] = idx;
                idx as usize
            } else {
                next as usize
            };
        }
        let old = self.nodes[node].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix-match lookup: the value of the most specific prefix
    /// containing `ip`, if any.
    #[inline]
    pub fn lookup(&self, ip: Ip) -> Option<&V> {
        let mut best: Option<&V> = self.nodes[0].value.as_ref();
        let mut node = 0usize;
        for i in 0..32 {
            let bit = ip.bit(i) as usize;
            let next = self.nodes[node].child[bit];
            if next == NONE {
                break;
            }
            node = next as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some(v);
            }
        }
        best
    }

    /// [`LpmTrie::lookup`] memoized through a caller-owned [`LpmCache`].
    ///
    /// Routers keep one cache per table next to it; steady flows hit the
    /// same destination repeatedly, turning the bit-by-bit trie walk into a
    /// single indexed load. The cache is stamped with the trie's mutation
    /// version, so route changes (insert/remove/`get_mut`) transparently
    /// force a re-walk — no explicit invalidation hook to forget.
    #[inline]
    pub fn lookup_cached<'a>(&'a self, ip: Ip, cache: &mut LpmCache) -> Option<&'a V> {
        if cache.version == self.version {
            if let Some((hit_ip, node)) = cache.entry {
                if hit_ip == ip {
                    if node == NONE {
                        return None;
                    }
                    return self.nodes[node as usize].value.as_ref();
                }
            }
        }
        // Miss (or stale): walk the trie, remembering the deepest node
        // carrying a value so the next packet to `ip` skips the walk.
        let mut best: u32 = if self.nodes[0].value.is_some() { 0 } else { NONE };
        let mut node = 0usize;
        for i in 0..32 {
            let bit = ip.bit(i) as usize;
            let next = self.nodes[node].child[bit];
            if next == NONE {
                break;
            }
            node = next as usize;
            if self.nodes[node].value.is_some() {
                best = node as u32;
            }
        }
        cache.version = self.version;
        cache.entry = Some((ip, best));
        if best == NONE {
            None
        } else {
            self.nodes[best as usize].value.as_ref()
        }
    }

    /// Like [`LpmTrie::lookup`] but also returns the matched prefix.
    pub fn lookup_entry(&self, ip: Ip) -> Option<(Prefix, &V)> {
        let mut best: Option<(u8, &V)> = self.nodes[0].value.as_ref().map(|v| (0u8, v));
        let mut node = 0usize;
        for i in 0..32u8 {
            let bit = ip.bit(i) as usize;
            let next = self.nodes[node].child[bit];
            if next == NONE {
                break;
            }
            node = next as usize;
            if let Some(v) = self.nodes[node].value.as_ref() {
                best = Some((i + 1, v));
            }
        }
        best.map(|(len, v)| (Prefix::new(ip, len), v))
    }

    /// Exact-match lookup of a stored prefix.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        let node = self.find_node(prefix)?;
        self.nodes[node].value.as_ref()
    }

    /// Mutable exact-match lookup.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut V> {
        let node = self.find_node(prefix)?;
        self.version += 1;
        self.nodes[node].value.as_mut()
    }

    /// Removes `prefix`, returning its value if present. Interior trie nodes
    /// are not reclaimed (tables in the emulator only shrink when routes are
    /// withdrawn, and reuse the slots on re-insert).
    pub fn remove(&mut self, prefix: Prefix) -> Option<V> {
        self.version += 1;
        let node = self.find_node(prefix)?;
        let old = self.nodes[node].value.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    fn find_node(&self, prefix: Prefix) -> Option<usize> {
        let mut node = 0usize;
        for i in 0..prefix.len() {
            let bit = prefix.addr().bit(i) as usize;
            let next = self.nodes[node].child[bit];
            if next == NONE {
                return None;
            }
            node = next as usize;
        }
        Some(node)
    }

    /// Iterates over all `(prefix, value)` pairs in depth-first order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &V)> + '_ {
        let mut stack: Vec<(u32, u32, u8)> = vec![(0, 0, 0)]; // (node, bits, depth)
        std::iter::from_fn(move || {
            while let Some((node, bits, depth)) = stack.pop() {
                let n = &self.nodes[node as usize];
                // Push children (right first so left pops first).
                for bit in [1u32, 0u32] {
                    let c = n.child[bit as usize];
                    if c != NONE {
                        let nbits = bits | (bit << (31 - depth));
                        stack.push((c, nbits, depth + 1));
                    }
                }
                if let Some(v) = n.value.as_ref() {
                    return Some((Prefix::new(Ip(bits), depth), v));
                }
            }
            None
        })
    }
}

impl<V> FromIterator<(Prefix, V)> for LpmTrie<V> {
    fn from_iter<T: IntoIterator<Item = (Prefix, V)>>(iter: T) -> Self {
        let mut t = LpmTrie::new();
        for (p, v) in iter {
            t.insert(p, v);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{ip, pfx};

    #[test]
    fn longest_match_wins() {
        let mut t = LpmTrie::new();
        t.insert(pfx("10.0.0.0/8"), 8);
        t.insert(pfx("10.1.0.0/16"), 16);
        t.insert(pfx("10.1.2.0/24"), 24);
        assert_eq!(t.lookup(ip("10.1.2.3")), Some(&24));
        assert_eq!(t.lookup(ip("10.1.9.3")), Some(&16));
        assert_eq!(t.lookup(ip("10.9.9.9")), Some(&8));
        assert_eq!(t.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn default_route() {
        let mut t = LpmTrie::new();
        t.insert(Prefix::DEFAULT, 0);
        assert_eq!(t.lookup(ip("203.0.113.9")), Some(&0));
        t.insert(pfx("203.0.113.0/24"), 24);
        assert_eq!(t.lookup(ip("203.0.113.9")), Some(&24));
        assert_eq!(t.lookup(ip("8.8.8.8")), Some(&0));
    }

    #[test]
    fn insert_replaces_and_reports_old() {
        let mut t = LpmTrie::new();
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_then_lookup_falls_back() {
        let mut t = LpmTrie::new();
        t.insert(pfx("10.0.0.0/8"), 8);
        t.insert(pfx("10.1.0.0/16"), 16);
        assert_eq!(t.remove(pfx("10.1.0.0/16")), Some(16));
        assert_eq!(t.lookup(ip("10.1.2.3")), Some(&8));
        assert_eq!(t.remove(pfx("10.1.0.0/16")), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn host_routes() {
        let mut t = LpmTrie::new();
        t.insert(Prefix::host(ip("1.2.3.4")), "a");
        assert_eq!(t.lookup(ip("1.2.3.4")), Some(&"a"));
        assert_eq!(t.lookup(ip("1.2.3.5")), None);
    }

    #[test]
    fn lookup_entry_returns_matched_prefix() {
        let mut t = LpmTrie::new();
        t.insert(pfx("10.0.0.0/8"), 8);
        t.insert(pfx("10.1.0.0/16"), 16);
        let (p, v) = t.lookup_entry(ip("10.1.2.3")).unwrap();
        assert_eq!(p, pfx("10.1.0.0/16"));
        assert_eq!(*v, 16);
    }

    #[test]
    fn iter_yields_all_prefixes() {
        let mut t = LpmTrie::new();
        let prefixes = ["10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16", "0.0.0.0/0"];
        for (i, p) in prefixes.iter().enumerate() {
            t.insert(p.parse().unwrap(), i);
        }
        let mut got: Vec<Prefix> = t.iter().map(|(p, _)| p).collect();
        got.sort();
        let mut want: Vec<Prefix> = prefixes.iter().map(|p| p.parse().unwrap()).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn get_exact_does_not_do_lpm() {
        let mut t = LpmTrie::new();
        t.insert(pfx("10.0.0.0/8"), 8);
        assert_eq!(t.get(pfx("10.0.0.0/8")), Some(&8));
        assert_eq!(t.get(pfx("10.1.0.0/16")), None);
    }

    #[test]
    fn cached_lookup_matches_plain_lookup() {
        let mut t = LpmTrie::new();
        t.insert(pfx("10.0.0.0/8"), "core");
        t.insert(pfx("10.1.0.0/16"), "site");
        let mut cache = LpmCache::default();
        for ip in ["10.1.2.3", "10.9.9.9", "172.16.0.1", "10.1.2.3"] {
            let ip: Ip = ip.parse().unwrap();
            assert_eq!(t.lookup_cached(ip, &mut cache), t.lookup(ip), "{ip:?}");
            // Immediate repeat exercises the hit path.
            assert_eq!(t.lookup_cached(ip, &mut cache), t.lookup(ip), "{ip:?} (hit)");
        }
    }

    #[test]
    fn cache_invalidated_by_mutation() {
        let mut t = LpmTrie::new();
        t.insert(pfx("10.0.0.0/8"), 1);
        let dst: Ip = "10.1.2.3".parse().unwrap();
        let mut cache = LpmCache::default();
        assert_eq!(t.lookup_cached(dst, &mut cache), Some(&1));
        // A more specific route must take over despite the warm cache.
        t.insert(pfx("10.1.0.0/16"), 2);
        assert_eq!(t.lookup_cached(dst, &mut cache), Some(&2));
        // Withdrawal must fall back to the covering prefix.
        t.remove(pfx("10.1.0.0/16"));
        assert_eq!(t.lookup_cached(dst, &mut cache), Some(&1));
        // And a cached miss must be revalidated too.
        let other: Ip = "192.168.0.1".parse().unwrap();
        assert_eq!(t.lookup_cached(other, &mut cache), None);
        t.insert(pfx("0.0.0.0/0"), 9);
        assert_eq!(t.lookup_cached(other, &mut cache), Some(&9));
    }
}
