//! Error type for packet parsing and address handling.

use std::fmt;

/// Errors produced while parsing addresses or decoding wire bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// A textual address or prefix failed to parse.
    BadAddress(String),
    /// The wire buffer ended before the header was complete.
    Truncated {
        /// Which header was being decoded.
        what: &'static str,
        /// Bytes that were needed.
        needed: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// A header field held an unsupported or inconsistent value.
    BadField {
        /// Which header was being decoded.
        what: &'static str,
        /// Description of the offending field.
        field: &'static str,
        /// The value observed.
        value: u64,
    },
    /// The IPv4 header checksum did not verify.
    BadChecksum,
    /// An unknown protocol or ethertype was encountered.
    UnknownProtocol(u16),
}

impl NetError {
    pub(crate) fn bad_addr(s: &str) -> Self {
        NetError::BadAddress(s.to_owned())
    }

    pub(crate) fn truncated(what: &'static str, needed: usize, have: usize) -> Self {
        NetError::Truncated { what, needed, have }
    }

    pub(crate) fn bad_field(what: &'static str, field: &'static str, value: u64) -> Self {
        NetError::BadField { what, field, value }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadAddress(s) => write!(f, "malformed address {s:?}"),
            NetError::Truncated { what, needed, have } => {
                write!(f, "truncated {what}: needed {needed} bytes, have {have}")
            }
            NetError::BadField { what, field, value } => {
                write!(f, "bad {what} field {field}: value {value}")
            }
            NetError::BadChecksum => write!(f, "IPv4 header checksum mismatch"),
            NetError::UnknownProtocol(p) => write!(f, "unknown protocol 0x{p:04x}"),
        }
    }
}

impl std::error::Error for NetError {}
