//! MPLS label stack entries (RFC 3032 shim header).
//!
//! A label stack entry is 32 bits on the wire:
//! `label (20) | EXP (3) | S (1) | TTL (8)`. In the structured [`crate::Packet`]
//! representation each entry is one [`crate::Layer::Mpls`]; the bottom-of-stack
//! bit is implied by stack position and materialized only at wire-encode time.
//! The 3-bit EXP field is the "QoS field of the MPLS header" the paper's §5
//! maps DiffServ markings into.

use std::fmt;

/// Largest encodable label value (20 bits).
pub const MAX_LABEL: u32 = (1 << 20) - 1;

/// IPv4 explicit-null reserved label (RFC 3032): pop and forward as IPv4,
/// preserving the EXP bits for QoS at the egress.
pub const EXPLICIT_NULL: u32 = 0;

/// Implicit-null reserved label (RFC 3032): advertised by an egress LSR to
/// request penultimate-hop popping; never appears on the wire.
pub const IMPLICIT_NULL: u32 = 3;

/// First label value outside the reserved range, available for allocation.
pub const MIN_UNRESERVED_LABEL: u32 = 16;

/// One MPLS label stack entry in structured form.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MplsLabel {
    /// The 20-bit label value.
    pub label: u32,
    /// The 3-bit EXP (experimental / QoS) field.
    pub exp: u8,
    /// The 8-bit TTL.
    pub ttl: u8,
}

impl MplsLabel {
    /// Creates an entry, asserting the label and EXP ranges.
    ///
    /// # Panics
    /// Panics if `label > MAX_LABEL` or `exp > 7`.
    #[inline]
    pub fn new(label: u32, exp: u8, ttl: u8) -> Self {
        assert!(label <= MAX_LABEL, "label {label} exceeds 20 bits");
        assert!(exp <= 7, "EXP {exp} exceeds 3 bits");
        MplsLabel { label, exp, ttl }
    }

    /// Encodes the entry to its 32-bit wire form with the given
    /// bottom-of-stack bit.
    #[inline]
    pub fn encode(self, bottom_of_stack: bool) -> u32 {
        (self.label << 12)
            | (u32::from(self.exp) << 9)
            | (u32::from(bottom_of_stack) << 8)
            | u32::from(self.ttl)
    }

    /// Decodes a 32-bit wire entry; returns the entry and the
    /// bottom-of-stack bit.
    #[inline]
    pub fn decode(word: u32) -> (Self, bool) {
        let label = word >> 12;
        let exp = ((word >> 9) & 0x7) as u8;
        let bos = (word >> 8) & 1 == 1;
        let ttl = (word & 0xFF) as u8;
        (MplsLabel { label, exp, ttl }, bos)
    }

    /// Whether this entry carries a reserved label value.
    #[inline]
    pub fn is_reserved(self) -> bool {
        self.label < MIN_UNRESERVED_LABEL
    }

    /// Decrement TTL; returns `false` when it has expired.
    #[inline]
    pub fn decrement_ttl(&mut self) -> bool {
        self.ttl = self.ttl.saturating_sub(1);
        self.ttl > 0
    }
}

impl fmt::Debug for MplsLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}/exp{}/ttl{}", self.label, self.exp, self.ttl)
    }
}

/// Size in bytes of one label stack entry on the wire.
pub const MPLS_ENTRY_LEN: usize = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let e = MplsLabel::new(0xABCDE, 5, 63);
        for bos in [true, false] {
            let (d, b) = MplsLabel::decode(e.encode(bos));
            assert_eq!(d, e);
            assert_eq!(b, bos);
        }
    }

    #[test]
    fn field_packing_layout() {
        let e = MplsLabel::new(1, 0, 0);
        assert_eq!(e.encode(false), 1 << 12);
        let e = MplsLabel::new(0, 7, 0);
        assert_eq!(e.encode(false), 7 << 9);
        let e = MplsLabel::new(0, 0, 255);
        assert_eq!(e.encode(true), 0x100 | 255);
    }

    #[test]
    #[should_panic(expected = "exceeds 20 bits")]
    fn rejects_oversized_label() {
        MplsLabel::new(MAX_LABEL + 1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds 3 bits")]
    fn rejects_oversized_exp() {
        MplsLabel::new(0, 8, 0);
    }

    #[test]
    fn reserved_range() {
        assert!(MplsLabel::new(EXPLICIT_NULL, 0, 1).is_reserved());
        assert!(MplsLabel::new(IMPLICIT_NULL, 0, 1).is_reserved());
        assert!(MplsLabel::new(15, 0, 1).is_reserved());
        assert!(!MplsLabel::new(MIN_UNRESERVED_LABEL, 0, 1).is_reserved());
    }

    #[test]
    fn ttl_expiry_saturates() {
        let mut e = MplsLabel::new(100, 0, 1);
        assert!(!e.decrement_ttl());
        assert!(!e.decrement_ttl());
        assert_eq!(e.ttl, 0);
    }
}
