//! Wire serialization for the packet model.
//!
//! A frame is a 2-byte ethertype followed by the layer headers and payload.
//! The emulator needs real bytes in exactly three places: IPsec (which must
//! encrypt a genuine serialization of the inner packet), byte-accurate link
//! accounting, and the round-trip property tests; routers otherwise stay on
//! the structured [`Packet`] form.

use bytes::Bytes;

use crate::addr::Ip;
use crate::dscp::Dscp;
use crate::error::NetError;
use crate::fr::VcHeader;
use crate::ip::{internet_checksum, proto, Ipv4Header, IPV4_HEADER_LEN};
use crate::mpls::MplsLabel;
use crate::packet::{EspHeader, Layer, Packet, ESP_HEADER_LEN};
use crate::transport::{TcpHeader, UdpHeader, TCP_HEADER_LEN, UDP_HEADER_LEN};

/// Ethertype for MPLS unicast.
pub const ETHERTYPE_MPLS: u16 = 0x8847;
/// Ethertype for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Ethertype used by the emulator for the frame-relay-like VC encapsulation.
pub const ETHERTYPE_VC: u16 = 0x6559;

/// Serializes a packet to wire bytes (ethertype + headers + payload).
///
/// Returns an error if the layer stack is not encodable (e.g. a transport
/// header with no IPv4 above it, or an MPLS stack whose payload is not IPv4).
pub fn encode(pkt: &Packet) -> Result<Vec<u8>, NetError> {
    let mut out = Vec::with_capacity(2 + pkt.wire_len());
    let ethertype = match pkt.layers().first() {
        Some(Layer::Mpls(_)) => ETHERTYPE_MPLS,
        Some(Layer::Ipv4(_)) => ETHERTYPE_IPV4,
        Some(Layer::Vc(_)) => ETHERTYPE_VC,
        _ => return Err(NetError::bad_field("frame", "first layer", 0)),
    };
    out.extend_from_slice(&ethertype.to_be_bytes());

    let layers = pkt.layers();
    for (i, layer) in layers.iter().enumerate() {
        // Bytes that will follow this layer's header on the wire.
        let remaining: usize =
            layers[i + 1..].iter().map(Layer::wire_len).sum::<usize>() + pkt.payload.len();
        match layer {
            Layer::Mpls(l) => {
                let bos = !matches!(layers.get(i + 1), Some(Layer::Mpls(_)));
                if bos && !matches!(layers.get(i + 1), Some(Layer::Ipv4(_))) {
                    return Err(NetError::bad_field("mpls", "payload type", i as u64));
                }
                out.extend_from_slice(&l.encode(bos).to_be_bytes());
            }
            Layer::Ipv4(h) => encode_ipv4(&mut out, h, remaining),
            Layer::Udp(u) => {
                out.extend_from_slice(&u.src_port.to_be_bytes());
                out.extend_from_slice(&u.dst_port.to_be_bytes());
                let len = (UDP_HEADER_LEN + remaining) as u16;
                out.extend_from_slice(&len.to_be_bytes());
                out.extend_from_slice(&0u16.to_be_bytes()); // checksum unused
            }
            Layer::Tcp(t) => {
                out.extend_from_slice(&t.src_port.to_be_bytes());
                out.extend_from_slice(&t.dst_port.to_be_bytes());
                out.extend_from_slice(&t.seq.to_be_bytes());
                out.extend_from_slice(&t.ack.to_be_bytes());
                out.push(5 << 4); // data offset, no options
                out.push(t.flags);
                out.extend_from_slice(&0xFFFFu16.to_be_bytes()); // window
                out.extend_from_slice(&0u16.to_be_bytes()); // checksum unused
                out.extend_from_slice(&0u16.to_be_bytes()); // urgent
            }
            Layer::Esp(e) => {
                out.extend_from_slice(&e.spi.to_be_bytes());
                out.extend_from_slice(&e.seq.to_be_bytes());
            }
            Layer::Vc(v) => {
                if !matches!(layers.get(i + 1), Some(Layer::Ipv4(_))) {
                    return Err(NetError::bad_field("vc", "payload type", i as u64));
                }
                out.extend_from_slice(&v.encode().to_be_bytes());
            }
        }
    }
    out.extend_from_slice(&pkt.payload);
    Ok(out)
}

fn encode_ipv4(out: &mut Vec<u8>, h: &Ipv4Header, remaining: usize) {
    let start = out.len();
    out.push(0x45); // version 4, IHL 5
    out.push(h.tos());
    let total = (IPV4_HEADER_LEN + remaining) as u16;
    out.extend_from_slice(&total.to_be_bytes());
    out.extend_from_slice(&h.id.to_be_bytes());
    out.extend_from_slice(&0x4000u16.to_be_bytes()); // DF, no fragments
    out.push(h.ttl);
    out.push(h.protocol);
    out.extend_from_slice(&0u16.to_be_bytes()); // checksum placeholder
    out.extend_from_slice(&h.src.0.to_be_bytes());
    out.extend_from_slice(&h.dst.0.to_be_bytes());
    let ck = internet_checksum(&out[start..start + IPV4_HEADER_LEN]);
    out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], NetError> {
        if self.buf.len() - self.pos < n {
            return Err(NetError::truncated(what, n, self.buf.len() - self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, NetError> {
        let s = self.take(2, what)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, NetError> {
        let s = self.take(4, what)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Parses wire bytes back into a structured packet. The returned packet has
/// default (zeroed) simulation metadata.
pub fn decode(buf: &[u8]) -> Result<Packet, NetError> {
    let mut cur = Cursor { buf, pos: 0 };
    let ethertype = cur.u16("ethertype")?;
    let mut layers = Vec::with_capacity(4);
    match ethertype {
        ETHERTYPE_MPLS => {
            loop {
                let (entry, bos) = MplsLabel::decode(cur.u32("mpls entry")?);
                layers.push(Layer::Mpls(entry));
                if bos {
                    break;
                }
            }
            decode_ipv4_chain(&mut cur, &mut layers)?;
        }
        ETHERTYPE_IPV4 => decode_ipv4_chain(&mut cur, &mut layers)?,
        ETHERTYPE_VC => {
            layers.push(Layer::Vc(VcHeader::decode(cur.u32("vc header")?)));
            decode_ipv4_chain(&mut cur, &mut layers)?;
        }
        other => return Err(NetError::UnknownProtocol(other)),
    }
    let payload = Bytes::copy_from_slice(&cur.buf[cur.pos..]);
    Ok(Packet::new(layers, payload))
}

fn decode_ipv4_chain(cur: &mut Cursor<'_>, layers: &mut Vec<Layer>) -> Result<(), NetError> {
    let start = cur.pos;
    let hdr = cur.take(IPV4_HEADER_LEN, "ipv4 header")?;
    if hdr[0] != 0x45 {
        return Err(NetError::bad_field("ipv4", "version/ihl", u64::from(hdr[0])));
    }
    if internet_checksum(hdr) != 0 {
        return Err(NetError::BadChecksum);
    }
    let tos = hdr[1];
    let total_len = usize::from(u16::from_be_bytes([hdr[2], hdr[3]]));
    let id = u16::from_be_bytes([hdr[4], hdr[5]]);
    let ttl = hdr[8];
    let protocol = hdr[9];
    let src = Ip(u32::from_be_bytes([hdr[12], hdr[13], hdr[14], hdr[15]]));
    let dst = Ip(u32::from_be_bytes([hdr[16], hdr[17], hdr[18], hdr[19]]));
    let body_len = cur.buf.len() - start;
    if total_len != body_len {
        return Err(NetError::bad_field("ipv4", "total length", total_len as u64));
    }
    layers.push(Layer::Ipv4(Ipv4Header {
        src,
        dst,
        dscp: Dscp::new(tos >> 2),
        ecn: tos & 0x3,
        ttl,
        protocol,
        id,
    }));
    match protocol {
        proto::UDP => {
            let u = cur.take(UDP_HEADER_LEN, "udp header")?;
            let len = usize::from(u16::from_be_bytes([u[4], u[5]]));
            if len != UDP_HEADER_LEN + cur.remaining() {
                return Err(NetError::bad_field("udp", "length", len as u64));
            }
            layers.push(Layer::Udp(UdpHeader {
                src_port: u16::from_be_bytes([u[0], u[1]]),
                dst_port: u16::from_be_bytes([u[2], u[3]]),
            }));
        }
        proto::TCP => {
            let t = cur.take(TCP_HEADER_LEN, "tcp header")?;
            if t[12] >> 4 != 5 {
                return Err(NetError::bad_field("tcp", "data offset", u64::from(t[12] >> 4)));
            }
            layers.push(Layer::Tcp(TcpHeader {
                src_port: u16::from_be_bytes([t[0], t[1]]),
                dst_port: u16::from_be_bytes([t[2], t[3]]),
                seq: u32::from_be_bytes([t[4], t[5], t[6], t[7]]),
                ack: u32::from_be_bytes([t[8], t[9], t[10], t[11]]),
                flags: t[13],
            }));
        }
        proto::ESP => {
            let e = cur.take(ESP_HEADER_LEN, "esp header")?;
            layers.push(Layer::Esp(EspHeader {
                spi: u32::from_be_bytes([e[0], e[1], e[2], e[3]]),
                seq: u32::from_be_bytes([e[4], e[5], e[6], e[7]]),
            }));
        }
        proto::IPIP => decode_ipv4_chain(cur, layers)?,
        // CONTROL and anything else: the rest of the frame is opaque payload.
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    fn assert_roundtrip(p: &Packet) {
        let bytes = encode(p).expect("encode");
        let back = decode(&bytes).expect("decode");
        assert_eq!(back.layers(), p.layers());
        assert_eq!(back.payload, p.payload);
        assert_eq!(bytes.len(), 2 + p.wire_len());
    }

    #[test]
    fn udp_roundtrip() {
        assert_roundtrip(&Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1234, 80, Dscp::AF21, 37));
    }

    #[test]
    fn tcp_roundtrip() {
        assert_roundtrip(&Packet::tcp(ip("10.0.0.1"), ip("10.9.0.2"), 99, 443, Dscp::BE, 7, 1400));
    }

    #[test]
    fn labeled_roundtrip() {
        let mut p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::EF, 10);
        p.push_outer(Layer::Mpls(MplsLabel::new(9000, 5, 60)));
        p.push_outer(Layer::Mpls(MplsLabel::new(17, 5, 61)));
        assert_roundtrip(&p);
    }

    #[test]
    fn esp_roundtrip() {
        let p = Packet::new(
            vec![
                Layer::Ipv4(Ipv4Header::new(ip("1.1.1.1"), ip("2.2.2.2"), proto::ESP, Dscp::BE)),
                Layer::Esp(EspHeader { spi: 0xDEAD, seq: 42 }),
            ],
            Bytes::from(vec![1u8; 48]),
        );
        assert_roundtrip(&p);
    }

    #[test]
    fn ipip_roundtrip() {
        let mut p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::AF11, 5);
        p.push_outer(Layer::Ipv4(Ipv4Header::new(
            ip("100.0.0.1"),
            ip("100.0.0.2"),
            proto::IPIP,
            Dscp::AF11,
        )));
        assert_roundtrip(&p);
    }

    #[test]
    fn vc_roundtrip() {
        let mut p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 5);
        p.push_outer(Layer::Vc(VcHeader::new(77, true)));
        assert_roundtrip(&p);
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 5);
        let mut bytes = encode(&p).unwrap();
        bytes[2 + 14] ^= 0xFF; // flip a source-address byte
        assert_eq!(decode(&bytes), Err(NetError::BadChecksum));
    }

    #[test]
    fn truncated_frame_rejected() {
        let p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 5);
        let bytes = encode(&p).unwrap();
        assert!(matches!(decode(&bytes[..10]), Err(NetError::Truncated { .. })));
        assert!(matches!(decode(&bytes[..1]), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn unknown_ethertype_rejected() {
        assert_eq!(decode(&[0x12, 0x34, 0, 0]), Err(NetError::UnknownProtocol(0x1234)));
    }

    #[test]
    fn transport_first_layer_unencodable() {
        let p = Packet::new(vec![Layer::Udp(UdpHeader::new(1, 2))], Bytes::new());
        assert!(encode(&p).is_err());
    }

    #[test]
    fn inconsistent_total_length_rejected() {
        let p = Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 1, 2, Dscp::BE, 5);
        let mut bytes = encode(&p).unwrap();
        bytes.push(0); // trailing garbage makes total_len inconsistent
        assert!(matches!(decode(&bytes), Err(NetError::BadField { .. })));
    }
}
