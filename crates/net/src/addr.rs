//! IPv4 addresses and CIDR prefixes.
//!
//! The emulator uses its own [`Ip`] newtype (a `u32` in host order) rather
//! than `std::net::Ipv4Addr` so that the hot paths — trie walks, hashing,
//! masking — compile down to plain integer arithmetic, and so that VPN code
//! can treat addresses as opaque per-VRF values (customer address spaces may
//! overlap; an `Ip` carries no global meaning by itself, which is exactly the
//! RFC 2547 model the paper builds on).

use std::fmt;
use std::str::FromStr;

use crate::error::NetError;

/// An IPv4 address stored as a host-order `u32`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ip(pub u32);

impl Ip {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ip = Ip(0);

    /// Builds an address from dotted-quad octets.
    #[inline]
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets, most significant first.
    #[inline]
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Extracts the bit at position `i`, where bit 0 is the most significant
    /// bit. Used by the LPM trie walk.
    #[inline]
    pub const fn bit(self, i: u8) -> u8 {
        debug_assert!(i < 32);
        ((self.0 >> (31 - i)) & 1) as u8
    }

    /// Applies a network mask of `len` leading one-bits.
    #[inline]
    pub const fn masked(self, len: u8) -> Ip {
        Ip(self.0 & mask(len))
    }
}

/// Returns the `u32` netmask with `len` leading ones (`len <= 32`).
#[inline]
pub const fn mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<u32> for Ip {
    fn from(v: u32) -> Self {
        Ip(v)
    }
}

impl From<[u8; 4]> for Ip {
    fn from(o: [u8; 4]) -> Self {
        Ip::new(o[0], o[1], o[2], o[3])
    }
}

impl FromStr for Ip {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| NetError::bad_addr(s))?;
            *slot = part.parse().map_err(|_| NetError::bad_addr(s))?;
        }
        if parts.next().is_some() {
            return Err(NetError::bad_addr(s));
        }
        Ok(Ip::from(octets))
    }
}

/// A CIDR prefix: a network address plus a mask length.
///
/// Prefixes are kept *normalized*: host bits below the mask are always zero,
/// so two prefixes are equal iff they denote the same address block. This
/// invariant is relied upon by the routing tables and is checked by the
/// property tests.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: Ip,
    len: u8,
}

impl Prefix {
    /// The default route `0.0.0.0/0`.
    pub const DEFAULT: Prefix = Prefix { addr: Ip(0), len: 0 };

    /// Creates a prefix, zeroing any host bits.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    #[inline]
    pub fn new(addr: Ip, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix { addr: addr.masked(len), len }
    }

    /// A host route (`/32`) for one address.
    #[inline]
    pub fn host(addr: Ip) -> Self {
        Prefix { addr, len: 32 }
    }

    /// The network address (host bits zero).
    #[inline]
    pub const fn addr(self) -> Ip {
        self.addr
    }

    /// The mask length in bits.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a prefix has no empty state
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    #[inline]
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// Whether `ip` falls inside this prefix.
    #[inline]
    pub fn contains(self, ip: Ip) -> bool {
        ip.masked(self.len) == self.addr
    }

    /// Whether the two prefixes share any address.
    pub fn overlaps(self, other: Prefix) -> bool {
        let l = self.len.min(other.len);
        self.addr.masked(l) == other.addr.masked(l)
    }

    /// The `i`-th address inside this prefix, wrapping inside the block.
    /// Convenient for synthesizing hosts in workload generators.
    pub fn nth(self, i: u32) -> Ip {
        let span = if self.len == 0 { u32::MAX } else { (1u64 << (32 - self.len)) as u32 - 1 };
        Ip(self.addr.0 | (i & span))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromStr for Prefix {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| NetError::bad_addr(s))?;
        let addr: Ip = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| NetError::bad_addr(s))?;
        if len > 32 {
            return Err(NetError::bad_addr(s));
        }
        Ok(Prefix::new(addr, len))
    }
}

/// Shorthand for parsing literal addresses in tests and examples.
///
/// # Panics
/// Panics on malformed input; use only with literals.
pub fn ip(s: &str) -> Ip {
    s.parse().unwrap_or_else(|_| panic!("bad ip literal {s:?}"))
}

/// Shorthand for parsing literal prefixes in tests and examples.
///
/// # Panics
/// Panics on malformed input; use only with literals.
pub fn pfx(s: &str) -> Prefix {
    s.parse().unwrap_or_else(|_| panic!("bad prefix literal {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_roundtrip_display_parse() {
        let a = Ip::new(10, 1, 255, 0);
        assert_eq!(a.to_string(), "10.1.255.0");
        assert_eq!("10.1.255.0".parse::<Ip>().unwrap(), a);
    }

    #[test]
    fn ip_rejects_malformed() {
        assert!("10.1.2".parse::<Ip>().is_err());
        assert!("10.1.2.3.4".parse::<Ip>().is_err());
        assert!("10.1.2.256".parse::<Ip>().is_err());
        assert!("".parse::<Ip>().is_err());
        assert!("a.b.c.d".parse::<Ip>().is_err());
    }

    #[test]
    fn bit_extraction_is_msb_first() {
        let a = Ip(0x8000_0001);
        assert_eq!(a.bit(0), 1);
        assert_eq!(a.bit(1), 0);
        assert_eq!(a.bit(31), 1);
    }

    #[test]
    fn mask_edges() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(8), 0xFF00_0000);
        assert_eq!(mask(32), u32::MAX);
    }

    #[test]
    fn prefix_normalizes_host_bits() {
        let p = Prefix::new(ip("10.1.2.3"), 8);
        assert_eq!(p.addr(), ip("10.0.0.0"));
        assert_eq!(p, pfx("10.0.0.0/8"));
    }

    #[test]
    fn prefix_contains() {
        let p = pfx("192.168.0.0/16");
        assert!(p.contains(ip("192.168.55.1")));
        assert!(!p.contains(ip("192.169.0.1")));
        assert!(Prefix::DEFAULT.contains(ip("8.8.8.8")));
    }

    #[test]
    fn prefix_overlap() {
        assert!(pfx("10.0.0.0/8").overlaps(pfx("10.1.0.0/16")));
        assert!(pfx("10.1.0.0/16").overlaps(pfx("10.0.0.0/8")));
        assert!(!pfx("10.0.0.0/8").overlaps(pfx("11.0.0.0/8")));
        assert!(Prefix::DEFAULT.overlaps(pfx("1.2.3.4/32")));
    }

    #[test]
    fn prefix_parse_rejects_bad_len() {
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn nth_wraps_within_block() {
        let p = pfx("10.0.0.0/30");
        assert_eq!(p.nth(0), ip("10.0.0.0"));
        assert_eq!(p.nth(1), ip("10.0.0.1"));
        assert_eq!(p.nth(3), ip("10.0.0.3"));
        // wraps: /30 has span 3
        assert_eq!(p.nth(4), ip("10.0.0.0"));
    }

    #[test]
    fn host_prefix_contains_only_itself() {
        let p = Prefix::host(ip("1.2.3.4"));
        assert!(p.contains(ip("1.2.3.4")));
        assert!(!p.contains(ip("1.2.3.5")));
    }
}
