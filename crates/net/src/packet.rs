//! The structured packet model shared by the whole emulator.
//!
//! A [`Packet`] is a stack of [`Layer`]s (outermost first) over an opaque
//! payload. Routers push/pop/swap layers without any byte-level work; the
//! wire form (see [`crate::wire`]) is produced only when something needs real
//! bytes — IPsec encryption, link-serialization byte counting, or the codec
//! property tests.

use bytes::Bytes;

use crate::addr::Ip;
use crate::dscp::Dscp;
use crate::fr::{VcHeader, VC_HEADER_LEN};
use crate::ip::{proto, Ipv4Header, IPV4_HEADER_LEN};
use crate::mpls::{MplsLabel, MPLS_ENTRY_LEN};
use crate::transport::{FiveTuple, TcpHeader, UdpHeader, TCP_HEADER_LEN, UDP_HEADER_LEN};

/// An ESP header (RFC 2406): security parameters index plus sequence number.
/// The encrypted body (ciphertext, padding, trailer, ICV) travels as the
/// packet payload; only `netsim-ipsec` can look inside.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EspHeader {
    /// Security parameters index identifying the SA at the receiver.
    pub spi: u32,
    /// Anti-replay sequence number.
    pub seq: u32,
}

/// Size in bytes of the ESP header on the wire.
pub const ESP_HEADER_LEN: usize = 8;

/// One protocol layer of a packet, outermost first in [`Packet::layers`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Layer {
    /// One MPLS label stack entry (multiple entries = multiple layers).
    Mpls(MplsLabel),
    /// An IPv4 header. May appear twice (IP-in-IP tunnel baseline).
    Ipv4(Ipv4Header),
    /// UDP ports.
    Udp(UdpHeader),
    /// TCP subset.
    Tcp(TcpHeader),
    /// ESP: everything beneath is encrypted into the payload.
    Esp(EspHeader),
    /// Frame-relay-like virtual circuit header (overlay baseline).
    Vc(VcHeader),
}

impl Layer {
    /// On-wire size of this layer's header in bytes.
    #[inline]
    pub fn wire_len(&self) -> usize {
        match self {
            Layer::Mpls(_) => MPLS_ENTRY_LEN,
            Layer::Ipv4(_) => IPV4_HEADER_LEN,
            Layer::Udp(_) => UDP_HEADER_LEN,
            Layer::Tcp(_) => TCP_HEADER_LEN,
            Layer::Esp(_) => ESP_HEADER_LEN,
            Layer::Vc(_) => VC_HEADER_LEN,
        }
    }
}

/// Simulation metadata riding along with a packet. Not part of the wire
/// form; used by the statistics machinery to compute latency, jitter and
/// loss without embedding timestamps in payloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PktMeta {
    /// Flow identifier assigned by the traffic generator.
    pub flow: u64,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Simulation time (ns) at which the packet was created.
    pub created_ns: u64,
}

/// A packet: layered headers over an opaque payload.
#[derive(Clone, PartialEq, Debug)]
pub struct Packet {
    layers: Vec<Layer>,
    /// Opaque application payload (or ESP ciphertext when the innermost
    /// layer is [`Layer::Esp`]).
    pub payload: Bytes,
    /// Simulation metadata (never serialized).
    pub meta: PktMeta,
}

impl Packet {
    /// Creates a packet from layers (outermost first) and payload.
    pub fn new(layers: Vec<Layer>, payload: Bytes) -> Self {
        Packet { layers, payload, meta: PktMeta::default() }
    }

    /// Convenience: a UDP datagram with `payload_len` zero bytes of payload.
    pub fn udp(
        src: Ip,
        dst: Ip,
        src_port: u16,
        dst_port: u16,
        dscp: Dscp,
        payload_len: usize,
    ) -> Self {
        Packet::new(
            vec![
                Layer::Ipv4(Ipv4Header::new(src, dst, proto::UDP, dscp)),
                Layer::Udp(UdpHeader::new(src_port, dst_port)),
            ],
            Bytes::from(vec![0u8; payload_len]),
        )
    }

    /// Convenience: a TCP segment with `payload_len` zero bytes of payload.
    pub fn tcp(
        src: Ip,
        dst: Ip,
        src_port: u16,
        dst_port: u16,
        dscp: Dscp,
        seq: u32,
        payload_len: usize,
    ) -> Self {
        Packet::new(
            vec![
                Layer::Ipv4(Ipv4Header::new(src, dst, proto::TCP, dscp)),
                Layer::Tcp(TcpHeader::new(src_port, dst_port, seq)),
            ],
            Bytes::from(vec![0u8; payload_len]),
        )
    }

    /// The layer stack, outermost first.
    #[inline]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The outermost layer, if any.
    #[inline]
    pub fn outer(&self) -> Option<&Layer> {
        self.layers.first()
    }

    /// Mutable access to the outermost layer.
    #[inline]
    pub fn outer_mut(&mut self) -> Option<&mut Layer> {
        self.layers.first_mut()
    }

    /// Pushes a new outermost layer (encapsulation).
    #[inline]
    pub fn push_outer(&mut self, layer: Layer) {
        self.layers.insert(0, layer);
    }

    /// Removes and returns the outermost layer (decapsulation).
    #[inline]
    pub fn pop_outer(&mut self) -> Option<Layer> {
        if self.layers.is_empty() {
            None
        } else {
            Some(self.layers.remove(0))
        }
    }

    /// Total on-wire size in bytes: all layer headers plus the payload.
    /// This is the size links charge when serializing the packet.
    #[inline]
    pub fn wire_len(&self) -> usize {
        self.layers.iter().map(Layer::wire_len).sum::<usize>() + self.payload.len()
    }

    /// The outermost MPLS label entry, if the packet is currently labeled.
    #[inline]
    pub fn top_label(&self) -> Option<MplsLabel> {
        match self.outer() {
            Some(Layer::Mpls(l)) => Some(*l),
            _ => None,
        }
    }

    /// Number of MPLS entries at the top of the stack.
    pub fn label_depth(&self) -> usize {
        self.layers.iter().take_while(|l| matches!(l, Layer::Mpls(_))).count()
    }

    /// The first (outermost) IPv4 header, skipping any MPLS/VC encapsulation.
    pub fn outer_ipv4(&self) -> Option<&Ipv4Header> {
        self.layers.iter().find_map(|l| match l {
            Layer::Ipv4(h) => Some(h),
            _ => None,
        })
    }

    /// Mutable access to the first IPv4 header.
    pub fn outer_ipv4_mut(&mut self) -> Option<&mut Ipv4Header> {
        self.layers.iter_mut().find_map(|l| match l {
            Layer::Ipv4(h) => Some(h),
            _ => None,
        })
    }

    /// The innermost IPv4 header — the customer packet inside any tunnels.
    /// Note this cannot see through ESP: an encrypted inner packet lives in
    /// the payload and is *not* visible here, by design.
    pub fn inner_ipv4(&self) -> Option<&Ipv4Header> {
        self.layers.iter().rev().find_map(|l| match l {
            Layer::Ipv4(h) => Some(h),
            _ => None,
        })
    }

    /// The classification 5-tuple *as visible at this point in the network*:
    /// computed from the outermost IPv4 header and the layer that follows
    /// it. For an ESP packet this yields `protocol = 50` with zero ports —
    /// exactly the information loss the paper describes (§3).
    pub fn visible_five_tuple(&self) -> Option<FiveTuple> {
        let idx = self.layers.iter().position(|l| matches!(l, Layer::Ipv4(_)))?;
        let Layer::Ipv4(ip) = &self.layers[idx] else { unreachable!() };
        let (src_port, dst_port) = match self.layers.get(idx + 1) {
            Some(Layer::Udp(u)) => (u.src_port, u.dst_port),
            Some(Layer::Tcp(t)) => (t.src_port, t.dst_port),
            _ => (0, 0),
        };
        Some(FiveTuple { src: ip.src, dst: ip.dst, protocol: ip.protocol, src_port, dst_port })
    }

    /// The DSCP of the outermost IPv4 header, if any.
    #[inline]
    pub fn dscp(&self) -> Option<Dscp> {
        self.outer_ipv4().map(|h| h.dscp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    fn sample() -> Packet {
        Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 5000, 53, Dscp::EF, 100)
    }

    #[test]
    fn udp_packet_shape() {
        let p = sample();
        assert_eq!(p.layers().len(), 2);
        assert_eq!(p.wire_len(), 20 + 8 + 100);
        assert_eq!(p.dscp(), Some(Dscp::EF));
    }

    #[test]
    fn push_pop_label() {
        let mut p = sample();
        p.push_outer(Layer::Mpls(MplsLabel::new(100, 5, 64)));
        p.push_outer(Layer::Mpls(MplsLabel::new(200, 5, 64)));
        assert_eq!(p.label_depth(), 2);
        assert_eq!(p.top_label().unwrap().label, 200);
        assert_eq!(p.wire_len(), 8 + 20 + 8 + 100);
        assert_eq!(p.pop_outer(), Some(Layer::Mpls(MplsLabel::new(200, 5, 64))));
        assert_eq!(p.label_depth(), 1);
    }

    #[test]
    fn five_tuple_sees_ports_without_tunnel() {
        let p = sample();
        let t = p.visible_five_tuple().unwrap();
        assert_eq!(t.src_port, 5000);
        assert_eq!(t.dst_port, 53);
        assert_eq!(t.protocol, proto::UDP);
    }

    #[test]
    fn five_tuple_blind_behind_esp() {
        // Outer IP + ESP: the visible 5-tuple must not expose inner ports.
        let p = Packet::new(
            vec![
                Layer::Ipv4(Ipv4Header::new(ip("1.1.1.1"), ip("2.2.2.2"), proto::ESP, Dscp::BE)),
                Layer::Esp(EspHeader { spi: 7, seq: 1 }),
            ],
            Bytes::from(vec![0u8; 64]),
        );
        let t = p.visible_five_tuple().unwrap();
        assert_eq!(t.protocol, proto::ESP);
        assert_eq!((t.src_port, t.dst_port), (0, 0));
    }

    #[test]
    fn inner_vs_outer_ipv4() {
        let mut p = sample();
        let inner_dst = p.inner_ipv4().unwrap().dst;
        p.push_outer(Layer::Ipv4(Ipv4Header::new(
            ip("100.0.0.1"),
            ip("100.0.0.2"),
            proto::IPIP,
            Dscp::BE,
        )));
        assert_eq!(p.inner_ipv4().unwrap().dst, inner_dst);
        assert_eq!(p.outer_ipv4().unwrap().dst, ip("100.0.0.2"));
    }

    #[test]
    fn mpls_then_ipv4_outer_lookup_skips_labels() {
        let mut p = sample();
        p.push_outer(Layer::Mpls(MplsLabel::new(42, 0, 64)));
        assert_eq!(p.outer_ipv4().unwrap().dst, ip("10.0.0.2"));
        assert!(p.top_label().is_some());
    }
}
