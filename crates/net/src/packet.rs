//! The structured packet model shared by the whole emulator.
//!
//! A [`Packet`] is a stack of [`Layer`]s (outermost first) over an opaque
//! payload. Routers push/pop/swap layers without any byte-level work; the
//! wire form (see [`crate::wire`]) is produced only when something needs real
//! bytes — IPsec encryption, link-serialization byte counting, or the codec
//! property tests.

use bytes::Bytes;

use crate::addr::Ip;
use crate::dscp::Dscp;
use crate::fr::{VcHeader, VC_HEADER_LEN};
use crate::ip::{proto, Ipv4Header, IPV4_HEADER_LEN};
use crate::mpls::{MplsLabel, MPLS_ENTRY_LEN};
use crate::transport::{FiveTuple, TcpHeader, UdpHeader, TCP_HEADER_LEN, UDP_HEADER_LEN};

/// An ESP header (RFC 2406): security parameters index plus sequence number.
/// The encrypted body (ciphertext, padding, trailer, ICV) travels as the
/// packet payload; only `netsim-ipsec` can look inside.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EspHeader {
    /// Security parameters index identifying the SA at the receiver.
    pub spi: u32,
    /// Anti-replay sequence number.
    pub seq: u32,
}

/// Size in bytes of the ESP header on the wire.
pub const ESP_HEADER_LEN: usize = 8;

/// One protocol layer of a packet, outermost first in [`Packet::layers`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Layer {
    /// One MPLS label stack entry (multiple entries = multiple layers).
    Mpls(MplsLabel),
    /// An IPv4 header. May appear twice (IP-in-IP tunnel baseline).
    Ipv4(Ipv4Header),
    /// UDP ports.
    Udp(UdpHeader),
    /// TCP subset.
    Tcp(TcpHeader),
    /// ESP: everything beneath is encrypted into the payload.
    Esp(EspHeader),
    /// Frame-relay-like virtual circuit header (overlay baseline).
    Vc(VcHeader),
}

impl Layer {
    /// On-wire size of this layer's header in bytes.
    #[inline]
    pub fn wire_len(&self) -> usize {
        match self {
            Layer::Mpls(_) => MPLS_ENTRY_LEN,
            Layer::Ipv4(_) => IPV4_HEADER_LEN,
            Layer::Udp(_) => UDP_HEADER_LEN,
            Layer::Tcp(_) => TCP_HEADER_LEN,
            Layer::Esp(_) => ESP_HEADER_LEN,
            Layer::Vc(_) => VC_HEADER_LEN,
        }
    }
}

/// Simulation metadata riding along with a packet. Not part of the wire
/// form; used by the statistics machinery to compute latency, jitter and
/// loss without embedding timestamps in payloads.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PktMeta {
    /// Flow identifier assigned by the traffic generator.
    pub flow: u64,
    /// Per-flow sequence number.
    pub seq: u64,
    /// Simulation time (ns) at which the packet was created.
    pub created_ns: u64,
    /// Whether this packet belongs to a synthetic SLA probe flow. Probe
    /// packets must experience the network exactly as data does, except
    /// that edge marking policies leave their DSCP alone (the probe *is*
    /// the class being measured).
    pub probe: bool,
}

/// A heap-boxed packet: the form in which packets travel through queues,
/// the event calendar, and node handlers. Hot-path code moves this 8-byte
/// handle instead of the ~150-byte [`Packet`] itself; the one allocation
/// happens at the traffic source and the box is reused unchanged across
/// every hop until the sink frees it. `Packet: Into<Pkt>` (via the blanket
/// `From<T> for Box<T>`), so construction sites can stay oblivious.
pub type Pkt = Box<Packet>;

/// Inline capacity of a packet's layer stack. VPN-path stacks are at most
/// four deep (MPLS×2 / IPv4 / UDP), so the common case never touches the
/// heap; deeper stacks (nested tunnels) spill to a vector.
const INLINE_LAYERS: usize = 4;

/// Placeholder occupying unused inline slots; never observable through the
/// public API, which only exposes the live prefix.
const FILL: Layer = Layer::Vc(VcHeader { vc_id: 0, discard_eligible: false });

/// Layer storage: a fixed inline array up to [`INLINE_LAYERS`] deep, or a
/// heap vector beyond that. Both variants keep the stack contiguous so
/// accessors can hand out plain slices.
#[derive(Clone)]
enum LayerStack {
    Inline { len: u8, buf: [Layer; INLINE_LAYERS] },
    Heap(Vec<Layer>),
}

impl LayerStack {
    fn pair(a: Layer, b: Layer) -> Self {
        LayerStack::Inline { len: 2, buf: [a, b, FILL, FILL] }
    }

    #[inline]
    fn as_slice(&self) -> &[Layer] {
        match self {
            LayerStack::Inline { len, buf } => &buf[..*len as usize],
            LayerStack::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [Layer] {
        match self {
            LayerStack::Inline { len, buf } => &mut buf[..*len as usize],
            LayerStack::Heap(v) => v,
        }
    }

    fn push_front(&mut self, layer: Layer) {
        match self {
            LayerStack::Inline { len, buf } => {
                let n = *len as usize;
                if n < INLINE_LAYERS {
                    buf.copy_within(0..n, 1);
                    buf[0] = layer;
                    *len += 1;
                } else {
                    // Spill; a stack that has gone deep once stays on the
                    // heap for the rest of its life.
                    let mut v = Vec::with_capacity(INLINE_LAYERS * 2);
                    v.push(layer);
                    v.extend_from_slice(buf);
                    *self = LayerStack::Heap(v);
                }
            }
            LayerStack::Heap(v) => v.insert(0, layer),
        }
    }

    fn pop_front(&mut self) -> Option<Layer> {
        match self {
            LayerStack::Inline { len, buf } => {
                if *len == 0 {
                    return None;
                }
                let out = buf[0];
                buf.copy_within(1..*len as usize, 0);
                *len -= 1;
                Some(out)
            }
            LayerStack::Heap(v) => {
                if v.is_empty() {
                    None
                } else {
                    Some(v.remove(0))
                }
            }
        }
    }
}

impl From<Vec<Layer>> for LayerStack {
    fn from(v: Vec<Layer>) -> Self {
        if v.len() <= INLINE_LAYERS {
            let mut buf = [FILL; INLINE_LAYERS];
            buf[..v.len()].copy_from_slice(&v);
            LayerStack::Inline { len: v.len() as u8, buf }
        } else {
            LayerStack::Heap(v)
        }
    }
}

/// A packet: layered headers over an opaque payload.
#[derive(Clone)]
pub struct Packet {
    layers: LayerStack,
    /// Cached sum of the layers' header bytes; maintained by every method
    /// that alters the stack so [`Packet::wire_len`] is O(1). Payload bytes
    /// are not included (the payload field is public and may be swapped).
    hdr_len: u32,
    /// Opaque application payload (or ESP ciphertext when the innermost
    /// layer is [`Layer::Esp`]).
    pub payload: Bytes,
    /// Simulation metadata (never serialized).
    pub meta: PktMeta,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        self.layers() == other.layers() && self.payload == other.payload && self.meta == other.meta
    }
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Packet")
            .field("layers", &self.layers())
            .field("payload", &self.payload)
            .field("meta", &self.meta)
            .finish()
    }
}

impl Packet {
    /// Creates a packet from layers (outermost first) and payload.
    pub fn new(layers: Vec<Layer>, payload: Bytes) -> Self {
        let hdr_len = layers.iter().map(Layer::wire_len).sum::<usize>() as u32;
        Packet { layers: layers.into(), hdr_len, payload, meta: PktMeta::default() }
    }

    /// Convenience: a UDP datagram with `payload_len` zero bytes of payload.
    pub fn udp(
        src: Ip,
        dst: Ip,
        src_port: u16,
        dst_port: u16,
        dscp: Dscp,
        payload_len: usize,
    ) -> Self {
        Packet {
            layers: LayerStack::pair(
                Layer::Ipv4(Ipv4Header::new(src, dst, proto::UDP, dscp)),
                Layer::Udp(UdpHeader::new(src_port, dst_port)),
            ),
            hdr_len: (IPV4_HEADER_LEN + UDP_HEADER_LEN) as u32,
            payload: Bytes::zeroed(payload_len),
            meta: PktMeta::default(),
        }
    }

    /// Convenience: a TCP segment with `payload_len` zero bytes of payload.
    pub fn tcp(
        src: Ip,
        dst: Ip,
        src_port: u16,
        dst_port: u16,
        dscp: Dscp,
        seq: u32,
        payload_len: usize,
    ) -> Self {
        Packet {
            layers: LayerStack::pair(
                Layer::Ipv4(Ipv4Header::new(src, dst, proto::TCP, dscp)),
                Layer::Tcp(TcpHeader::new(src_port, dst_port, seq)),
            ),
            hdr_len: (IPV4_HEADER_LEN + TCP_HEADER_LEN) as u32,
            payload: Bytes::zeroed(payload_len),
            meta: PktMeta::default(),
        }
    }

    /// The layer stack, outermost first.
    #[inline]
    pub fn layers(&self) -> &[Layer] {
        self.layers.as_slice()
    }

    /// The outermost layer, if any.
    #[inline]
    pub fn outer(&self) -> Option<&Layer> {
        self.layers().first()
    }

    /// Mutable access to the outermost layer.
    #[inline]
    pub fn outer_mut(&mut self) -> Option<&mut Layer> {
        self.layers.as_mut_slice().first_mut()
    }

    /// Pushes a new outermost layer (encapsulation).
    #[inline]
    pub fn push_outer(&mut self, layer: Layer) {
        self.hdr_len += layer.wire_len() as u32;
        self.layers.push_front(layer);
    }

    /// Removes and returns the outermost layer (decapsulation).
    #[inline]
    pub fn pop_outer(&mut self) -> Option<Layer> {
        let popped = self.layers.pop_front();
        if let Some(l) = &popped {
            self.hdr_len -= l.wire_len() as u32;
        }
        popped
    }

    /// Total on-wire size in bytes: all layer headers plus the payload.
    /// This is the size links charge when serializing the packet.
    ///
    /// O(1): header bytes are cached across push/pop. The debug assert
    /// catches the one way the cache could rot — replacing a layer with a
    /// different *variant* through [`Packet::outer_mut`] (in-place header
    /// field edits, the intended use, keep the variant and its size).
    #[inline]
    pub fn wire_len(&self) -> usize {
        debug_assert_eq!(
            self.hdr_len as usize,
            self.layers().iter().map(Layer::wire_len).sum::<usize>(),
            "cached header length diverged from the layer stack",
        );
        self.hdr_len as usize + self.payload.len()
    }

    /// The outermost MPLS label entry, if the packet is currently labeled.
    #[inline]
    pub fn top_label(&self) -> Option<MplsLabel> {
        match self.outer() {
            Some(Layer::Mpls(l)) => Some(*l),
            _ => None,
        }
    }

    /// Number of MPLS entries at the top of the stack.
    pub fn label_depth(&self) -> usize {
        self.layers().iter().take_while(|l| matches!(l, Layer::Mpls(_))).count()
    }

    /// The first (outermost) IPv4 header, skipping any MPLS/VC encapsulation.
    pub fn outer_ipv4(&self) -> Option<&Ipv4Header> {
        self.layers().iter().find_map(|l| match l {
            Layer::Ipv4(h) => Some(h),
            _ => None,
        })
    }

    /// Mutable access to the first IPv4 header.
    pub fn outer_ipv4_mut(&mut self) -> Option<&mut Ipv4Header> {
        self.layers.as_mut_slice().iter_mut().find_map(|l| match l {
            Layer::Ipv4(h) => Some(h),
            _ => None,
        })
    }

    /// The innermost IPv4 header — the customer packet inside any tunnels.
    /// Note this cannot see through ESP: an encrypted inner packet lives in
    /// the payload and is *not* visible here, by design.
    pub fn inner_ipv4(&self) -> Option<&Ipv4Header> {
        self.layers().iter().rev().find_map(|l| match l {
            Layer::Ipv4(h) => Some(h),
            _ => None,
        })
    }

    /// The classification 5-tuple *as visible at this point in the network*:
    /// computed from the outermost IPv4 header and the layer that follows
    /// it. For an ESP packet this yields `protocol = 50` with zero ports —
    /// exactly the information loss the paper describes (§3).
    pub fn visible_five_tuple(&self) -> Option<FiveTuple> {
        let layers = self.layers();
        let idx = layers.iter().position(|l| matches!(l, Layer::Ipv4(_)))?;
        let Layer::Ipv4(ip) = &layers[idx] else { unreachable!() };
        let (src_port, dst_port) = match layers.get(idx + 1) {
            Some(Layer::Udp(u)) => (u.src_port, u.dst_port),
            Some(Layer::Tcp(t)) => (t.src_port, t.dst_port),
            _ => (0, 0),
        };
        Some(FiveTuple { src: ip.src, dst: ip.dst, protocol: ip.protocol, src_port, dst_port })
    }

    /// The DSCP of the outermost IPv4 header, if any.
    #[inline]
    pub fn dscp(&self) -> Option<Dscp> {
        self.outer_ipv4().map(|h| h.dscp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    fn sample() -> Packet {
        Packet::udp(ip("10.0.0.1"), ip("10.0.0.2"), 5000, 53, Dscp::EF, 100)
    }

    #[test]
    fn udp_packet_shape() {
        let p = sample();
        assert_eq!(p.layers().len(), 2);
        assert_eq!(p.wire_len(), 20 + 8 + 100);
        assert_eq!(p.dscp(), Some(Dscp::EF));
    }

    #[test]
    fn push_pop_label() {
        let mut p = sample();
        p.push_outer(Layer::Mpls(MplsLabel::new(100, 5, 64)));
        p.push_outer(Layer::Mpls(MplsLabel::new(200, 5, 64)));
        assert_eq!(p.label_depth(), 2);
        assert_eq!(p.top_label().unwrap().label, 200);
        assert_eq!(p.wire_len(), 8 + 20 + 8 + 100);
        assert_eq!(p.pop_outer(), Some(Layer::Mpls(MplsLabel::new(200, 5, 64))));
        assert_eq!(p.label_depth(), 1);
    }

    #[test]
    fn five_tuple_sees_ports_without_tunnel() {
        let p = sample();
        let t = p.visible_five_tuple().unwrap();
        assert_eq!(t.src_port, 5000);
        assert_eq!(t.dst_port, 53);
        assert_eq!(t.protocol, proto::UDP);
    }

    #[test]
    fn five_tuple_blind_behind_esp() {
        // Outer IP + ESP: the visible 5-tuple must not expose inner ports.
        let p = Packet::new(
            vec![
                Layer::Ipv4(Ipv4Header::new(ip("1.1.1.1"), ip("2.2.2.2"), proto::ESP, Dscp::BE)),
                Layer::Esp(EspHeader { spi: 7, seq: 1 }),
            ],
            Bytes::from(vec![0u8; 64]),
        );
        let t = p.visible_five_tuple().unwrap();
        assert_eq!(t.protocol, proto::ESP);
        assert_eq!((t.src_port, t.dst_port), (0, 0));
    }

    #[test]
    fn inner_vs_outer_ipv4() {
        let mut p = sample();
        let inner_dst = p.inner_ipv4().unwrap().dst;
        p.push_outer(Layer::Ipv4(Ipv4Header::new(
            ip("100.0.0.1"),
            ip("100.0.0.2"),
            proto::IPIP,
            Dscp::BE,
        )));
        assert_eq!(p.inner_ipv4().unwrap().dst, inner_dst);
        assert_eq!(p.outer_ipv4().unwrap().dst, ip("100.0.0.2"));
    }

    #[test]
    fn deep_stack_spills_to_heap_and_back_pops_in_order() {
        // Push four labels over IPv4+UDP: exceeds the inline capacity, so
        // the stack spills; every accessor must behave identically.
        let mut p = sample();
        for i in 0..4u32 {
            p.push_outer(Layer::Mpls(MplsLabel::new(100 + i, 0, 64)));
        }
        assert_eq!(p.layers().len(), 6);
        assert_eq!(p.label_depth(), 4);
        assert_eq!(p.top_label().unwrap().label, 103);
        assert_eq!(p.wire_len(), 4 * 4 + 20 + 8 + 100);
        assert_eq!(p.inner_ipv4().unwrap().dst, ip("10.0.0.2"));
        for i in (0..4u32).rev() {
            assert_eq!(p.pop_outer(), Some(Layer::Mpls(MplsLabel::new(100 + i, 0, 64))));
        }
        assert_eq!(p, sample(), "fully decapsulated packet equals the original");
    }

    #[test]
    fn inline_and_heap_packets_compare_by_live_layers_only() {
        // Drive `b` past the inline capacity so it spills, then strip it
        // back down: it must compare equal to the never-spilled `a` and
        // render no trace of the popped layers.
        let a = sample();
        let mut b = sample();
        for i in 0..3u32 {
            b.push_outer(Layer::Mpls(MplsLabel::new(i, 0, 64)));
        }
        assert_ne!(a, b);
        for _ in 0..3 {
            b.pop_outer();
        }
        assert_eq!(a, b);
        assert_eq!(format!("{b:?}").matches("Mpls").count(), 0);
    }

    #[test]
    fn mpls_then_ipv4_outer_lookup_skips_labels() {
        let mut p = sample();
        p.push_outer(Layer::Mpls(MplsLabel::new(42, 0, 64)));
        assert_eq!(p.outer_ipv4().unwrap().dst, ip("10.0.0.2"));
        assert!(p.top_label().is_some());
    }
}
