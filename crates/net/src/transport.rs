//! Simplified transport headers (UDP and a TCP subset) plus the 5-tuple used
//! by classifiers.

use crate::addr::Ip;

/// A UDP header (ports only; length/checksum are materialized at encode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

/// Size in bytes of the UDP header on the wire.
pub const UDP_HEADER_LEN: usize = 8;

impl UdpHeader {
    /// Creates a header.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader { src_port, dst_port }
    }
}

/// A TCP header subset: ports, sequence numbers and flags. Enough for the
/// emulator's TCP-like bulk sources; congestion control itself is modelled in
/// `netsim-sim`'s generators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits (FIN=0x01, SYN=0x02, RST=0x04, PSH=0x08, ACK=0x10).
    pub flags: u8,
}

/// Size in bytes of the (option-less) TCP header on the wire.
pub const TCP_HEADER_LEN: usize = 20;

impl TcpHeader {
    /// Creates a data-segment header with the ACK flag set.
    pub fn new(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpHeader { src_port, dst_port, seq, ack: 0, flags: 0x10 }
    }
}

/// The classic classification 5-tuple.
///
/// This is what the CPE's CBQ classifier (paper §5) matches on — and exactly
/// what becomes invisible once IPsec ESP encrypts the inner packet (§3),
/// which experiment Q2 measures.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FiveTuple {
    /// Source address.
    pub src: Ip,
    /// Destination address.
    pub dst: Ip,
    /// IP protocol number.
    pub protocol: u8,
    /// Source port (zero when the protocol has no ports).
    pub src_port: u16,
    /// Destination port (zero when the protocol has no ports).
    pub dst_port: u16,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    #[test]
    fn five_tuple_equality_is_field_wise() {
        let a = FiveTuple {
            src: ip("10.0.0.1"),
            dst: ip("10.0.0.2"),
            protocol: 17,
            src_port: 4000,
            dst_port: 53,
        };
        let mut b = a;
        assert_eq!(a, b);
        b.dst_port = 80;
        assert_ne!(a, b);
    }

    #[test]
    fn tcp_default_flags_ack() {
        assert_eq!(TcpHeader::new(1, 2, 3).flags, 0x10);
    }
}
