//! IPv4 header model and checksum.

use crate::addr::Ip;
use crate::dscp::Dscp;

/// Well-known IP protocol numbers used by the emulator.
pub mod proto {
    /// UDP (RFC 768).
    pub const UDP: u8 = 17;
    /// TCP (RFC 793). The emulator models a simplified header.
    pub const TCP: u8 = 6;
    /// Encapsulating Security Payload (RFC 2406).
    pub const ESP: u8 = 50;
    /// IP-in-IP (RFC 2003); used by the IP tunnel baseline.
    pub const IPIP: u8 = 4;
    /// Emulator-internal "control plane" protocol number (from the
    /// experimental range) carrying signalling between routers when a test
    /// chooses to run control traffic in-band.
    pub const CONTROL: u8 = 253;
}

/// An IPv4 header in structured form.
///
/// Options are not modelled (header length is always 20 bytes); nothing in
/// the paper's architecture requires them. `total_len` and the checksum are
/// materialized only at wire-encode time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ip,
    /// Destination address.
    pub dst: Ip,
    /// DiffServ code point (upper six bits of the ToS byte).
    pub dscp: Dscp,
    /// Explicit congestion notification (lower two bits of the ToS byte).
    pub ecn: u8,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number (see [`proto`]).
    pub protocol: u8,
    /// Identification field (used only for display/trace purposes).
    pub id: u16,
}

/// Size in bytes of the (option-less) IPv4 header on the wire.
pub const IPV4_HEADER_LEN: usize = 20;

/// ECN codepoints (RFC 3168): the two low bits of the ToS byte.
pub mod ecn {
    /// Not ECN-capable transport.
    pub const NOT_ECT: u8 = 0b00;
    /// ECN-capable transport (1).
    pub const ECT1: u8 = 0b01;
    /// ECN-capable transport (0) — the codepoint senders normally use.
    pub const ECT0: u8 = 0b10;
    /// Congestion experienced: set by an AQM instead of dropping.
    pub const CE: u8 = 0b11;
}

/// Default TTL applied by the emulator's hosts.
pub const DEFAULT_TTL: u8 = 64;

impl Ipv4Header {
    /// Creates a header with default TTL, zero ECN and id.
    pub fn new(src: Ip, dst: Ip, protocol: u8, dscp: Dscp) -> Self {
        Ipv4Header { src, dst, dscp, ecn: 0, ttl: DEFAULT_TTL, protocol, id: 0 }
    }

    /// The ToS byte as it would appear on the wire.
    #[inline]
    pub fn tos(&self) -> u8 {
        (self.dscp.value() << 2) | (self.ecn & 0x3)
    }

    /// Decrement TTL; returns `false` when it has expired (reached zero).
    #[inline]
    pub fn decrement_ttl(&mut self) -> bool {
        self.ttl = self.ttl.saturating_sub(1);
        self.ttl > 0
    }

    /// Whether the sender declared ECN capability (ECT(0) or ECT(1)).
    #[inline]
    pub fn is_ect(&self) -> bool {
        self.ecn != ecn::NOT_ECT
    }

    /// Whether a router marked congestion-experienced.
    #[inline]
    pub fn is_ce(&self) -> bool {
        self.ecn == ecn::CE
    }

    /// Marks congestion experienced (only meaningful on ECT packets).
    #[inline]
    pub fn set_ce(&mut self) {
        self.ecn = ecn::CE;
    }
}

/// Computes the Internet checksum (RFC 1071) over `data`.
///
/// Used for the IPv4 header at wire-encode time and verified at decode time.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::ip;

    #[test]
    fn tos_combines_dscp_and_ecn() {
        let mut h = Ipv4Header::new(ip("1.1.1.1"), ip("2.2.2.2"), proto::UDP, Dscp::EF);
        h.ecn = 0b10;
        assert_eq!(h.tos(), (46 << 2) | 0b10);
    }

    #[test]
    fn ttl_expiry() {
        let mut h = Ipv4Header::new(ip("1.1.1.1"), ip("2.2.2.2"), proto::UDP, Dscp::BE);
        h.ttl = 2;
        assert!(h.decrement_ttl());
        assert!(!h.decrement_ttl());
        assert_eq!(h.ttl, 0);
        // Saturates rather than wrapping.
        assert!(!h.decrement_ttl());
        assert_eq!(h.ttl, 0);
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 discussions: header with checksum field zero.
        let hdr: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&hdr), 0xb861);
    }

    #[test]
    fn checksum_verifies_to_zero_when_included() {
        let mut hdr: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let ck = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(internet_checksum(&hdr), 0);
    }

    #[test]
    fn checksum_odd_length() {
        // Must not panic and must treat the trailing byte as high-order.
        assert_eq!(internet_checksum(&[0xFF]), !0xFF00u16);
    }
}
