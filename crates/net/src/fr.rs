//! Frame-relay-like virtual-circuit header for the overlay VPN baseline.
//!
//! The paper's §2.1 compares the MPLS VPN model against provisioning one
//! virtual circuit per site pair over a frame relay / ATM service. The
//! overlay baseline in `mplsvpn-core` switches packets on a per-hop VC
//! identifier (a DLCI in frame relay terms) carried by this header, so its
//! control-plane cost — the N(N−1)/2 circuit explosion — can be measured
//! against a functioning data plane rather than a formula.

use std::fmt;

/// A virtual-circuit header: a link-local circuit identifier plus a
/// discard-eligibility bit (frame relay's crude QoS knob — the only QoS
/// signal the overlay data plane can carry, in contrast to MPLS EXP).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VcHeader {
    /// Link-local circuit identifier (DLCI-like, 22 bits used).
    pub vc_id: u32,
    /// Discard eligibility: marked frames are dropped first under congestion.
    pub discard_eligible: bool,
}

/// Size in bytes of the VC header on the wire (modelled as 4 bytes).
pub const VC_HEADER_LEN: usize = 4;

impl VcHeader {
    /// Creates a header.
    ///
    /// # Panics
    /// Panics if `vc_id` exceeds 22 bits.
    pub fn new(vc_id: u32, discard_eligible: bool) -> Self {
        assert!(vc_id < (1 << 22), "vc id {vc_id} exceeds 22 bits");
        VcHeader { vc_id, discard_eligible }
    }

    /// Encodes to the 32-bit wire form.
    #[inline]
    pub fn encode(self) -> u32 {
        (self.vc_id << 1) | u32::from(self.discard_eligible)
    }

    /// Decodes from the 32-bit wire form.
    #[inline]
    pub fn decode(word: u32) -> Self {
        VcHeader { vc_id: (word >> 1) & ((1 << 22) - 1), discard_eligible: word & 1 == 1 }
    }
}

impl fmt::Debug for VcHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC{}{}", self.vc_id, if self.discard_eligible { "/DE" } else { "" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for de in [false, true] {
            let h = VcHeader::new(0x3FFFFF, de);
            assert_eq!(VcHeader::decode(h.encode()), h);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 22 bits")]
    fn rejects_oversized_id() {
        VcHeader::new(1 << 22, false);
    }
}
