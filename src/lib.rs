//! # mplsvpn — end-to-end QoS architecture for VPNs
//!
//! A full userspace reproduction of *"End-To-End QoS Architecture for
//! VPNs: MPLS VPN Deployment in a Backbone Network"* (Lee, Hwang, Kang,
//! Jun — ICPP 2000): an MPLS/BGP VPN provider backbone with a
//! DiffServ-over-MPLS QoS pipeline, running on a deterministic
//! discrete-event network simulator, plus the two baselines the paper
//! argues against (overlay PVC meshes and IPsec-over-IP).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`net`] — packets, addresses, prefixes, LPM trie, wire codec.
//! * [`sim`] — the discrete-event simulator, traffic sources, statistics.
//! * [`qos`] — classifiers, meters, RED/WRED, schedulers, DSCP↔EXP.
//! * [`mpls`] — label spaces, LFIB, LDP, explicit LSPs.
//! * [`routing`] — topology, link-state IGP, BGP/MPLS VPN fabric.
//! * [`te`] — CSPF and trunk admission with preemption.
//! * [`ipsec`] — ESP tunnel emulation and IKE simulation.
//! * [`obs`] — telemetry: metrics registry, drop-cause flight recorder,
//!   SLA probes, metric snapshots (DESIGN.md §8).
//! * [`vpn`] — the assembled architecture: provider networks, PE/P/CE
//!   routers, baselines, SLAs, tracing.
//!
//! ## Quickstart
//!
//! ```
//! use mplsvpn::vpn::{BackboneBuilder, CoreQos};
//! use mplsvpn::routing::{LinkAttrs, Topology};
//! use mplsvpn::sim::{Sink, SourceConfig, MSEC, SEC};
//!
//! // A three-node backbone: PE0 — P — PE1.
//! let mut topo = Topology::new(3);
//! let attrs = LinkAttrs { cost: 1, capacity_bps: 100_000_000 };
//! topo.add_link(0, 1, attrs);
//! topo.add_link(1, 2, attrs);
//!
//! let mut pn = BackboneBuilder::new(topo, vec![0, 2]).build();
//! let vpn = pn.new_vpn("acme");
//! let a = pn.add_site(vpn, 0, "10.1.0.0/16".parse().unwrap(), None);
//! let b = pn.add_site(vpn, 1, "10.2.0.0/16".parse().unwrap(), None);
//!
//! let sink = pn.attach_sink(b, "10.2.0.0/16".parse().unwrap());
//! let cfg = SourceConfig::udp(1, pn.site_addr(a, 1), pn.site_addr(b, 1), 5000, 200);
//! pn.attach_cbr_source(a, cfg, MSEC, Some(100));
//! pn.run_for(SEC);
//!
//! let stats = pn.net.node_ref::<Sink>(sink);
//! assert_eq!(stats.flow(1).unwrap().rx_packets, 100);
//! ```

#![warn(missing_docs)]

/// Packet formats and address machinery ([`netsim_net`]).
pub use netsim_net as net;

/// The discrete-event simulator ([`netsim_sim`]).
pub use netsim_sim as sim;

/// DiffServ QoS building blocks ([`netsim_qos`]).
pub use netsim_qos as qos;

/// MPLS data plane and label distribution ([`netsim_mpls`]).
pub use netsim_mpls as mpls;

/// IGP and BGP/MPLS VPN control planes ([`netsim_routing`]).
pub use netsim_routing as routing;

/// Traffic engineering ([`netsim_te`]).
pub use netsim_te as te;

/// IPsec emulation ([`netsim_ipsec`]).
pub use netsim_ipsec as ipsec;

/// Telemetry: registry, flight recorder, snapshots ([`netsim_obs`]).
pub use netsim_obs as obs;

/// The assembled VPN architecture ([`mplsvpn_core`]).
pub use mplsvpn_core as vpn;

/// Static control-plane and QoS-configuration verifier
/// ([`netsim_verify`]).
pub use netsim_verify as verify;
